package obs

// Canonical metric family names. Every metric the stack registers is
// named here, in one place, so docs/OBSERVABILITY.md can be audited
// against the source (scripts/docscheck.sh greps these constants) and so
// instrumentation sites cannot drift apart on spelling. Label-bearing
// families note their labels; Label folds them into the full name.
const (
	// --- ibp client (one per depot operation, recorded in Client.roundTrip) ---

	// MIBPOpMs: histogram, ms. One per operation verb: {op=ALLOCATE|STORE|...}.
	MIBPOpMs = "ibp.op.ms"
	// MIBPDepotMs: histogram, ms. One per depot address: {depot=host:port}.
	// The "which depot is slow" histogram of docs/OBSERVABILITY.md.
	MIBPDepotMs = "ibp.depot.ms"
	// MIBPOpErrors: counter. Failed operations, {op=...}.
	MIBPOpErrors = "ibp.op.errors"
	// MIBPBytesOut: counter. Payload bytes written to depots (STORE).
	MIBPBytesOut = "ibp.bytes_out"
	// MIBPBytesIn: counter. Payload bytes read from depots (LOAD).
	MIBPBytesIn = "ibp.bytes_in"

	// --- ibp server / depot (recorded by ibp.Server.dispatch) ---

	// MIBPServerOpMs: histogram, ms per served verb: {op=...}.
	MIBPServerOpMs = "ibp.server.op.ms"
	// MIBPServerErrors: counter. Requests answered with ERR, {op=...}.
	MIBPServerErrors = "ibp.server.errors"
	// MIBPShed: counter. Requests rejected with BUSY by admission control,
	// {reason=queue_full|queue_wait|deadline}.
	MIBPShed = "ibp.shed"
	// MIBPInflight: gauge. Requests currently executing on the depot.
	MIBPInflight = "ibp.server.inflight"
	// MIBPQueueDepth: gauge. Requests waiting for an execution slot.
	MIBPQueueDepth = "ibp.server.queue_depth"

	// --- lors transfer layer ---

	// MLorsDownloadMs: histogram, ms per whole-object Download.
	MLorsDownloadMs = "lors.download.ms"
	// MLorsExtentMs: histogram, ms per extent fetch (failover or race).
	MLorsExtentMs = "lors.download.extent.ms"
	// MLorsDownloadBytes: counter. Payload bytes assembled by Download.
	MLorsDownloadBytes = "lors.download.bytes"
	// MLorsReplicaTries: counter. Replica load attempts, incl. failures.
	MLorsReplicaTries = "lors.download.replica_tries"
	// MLorsFailedAttempts: counter. Failed replica loads.
	MLorsFailedAttempts = "lors.download.failed_attempts"
	// MLorsChecksumErrors: counter. Failed attempts that were CRC mismatches.
	MLorsChecksumErrors = "lors.download.checksum_errors"
	// MLorsSkippedReplicas: counter. Replicas skipped on open circuits.
	MLorsSkippedReplicas = "lors.download.skipped_replicas"
	// MLorsRetryPasses: counter. Replica-list retry passes beyond the first.
	MLorsRetryPasses = "lors.download.retry_passes"
	// MLorsUploadMs: histogram, ms per whole-object Upload.
	MLorsUploadMs = "lors.upload.ms"
	// MLorsStripeMs: histogram, ms per stripe placement (all replicas).
	MLorsStripeMs = "lors.upload.stripe.ms"
	// MLorsUploadBytes: counter. Payload bytes uploaded (once per stripe
	// replica actually stored).
	MLorsUploadBytes = "lors.upload.bytes"
	// MLorsStageMs: histogram, ms per CopyToStriped staging transfer.
	MLorsStageMs = "lors.stage.ms"
	// MLorsStageExtents: counter. Extents staged by third-party copy.
	MLorsStageExtents = "lors.stage.extents"
	// MLorsCircuitTrips: counter. Depot circuits opened by the breaker.
	MLorsCircuitTrips = "lors.circuit.trips"
	// MLorsCircuitOpen: gauge. Depots whose circuit is currently open.
	MLorsCircuitOpen = "lors.circuit.open"
	// MLorsBusyRejections: counter. Replica attempts answered BUSY by depot
	// admission control (treated as retryable-elsewhere, not depot failure).
	MLorsBusyRejections = "lors.download.busy_rejections"
	// MLorsRetryBudgetExhausted: counter. Retry passes skipped because the
	// token-bucket retry budget was empty (retry-storm clamp).
	MLorsRetryBudgetExhausted = "lors.retry_budget_exhausted"

	// --- directory services ---

	// MDVSOpMs: histogram, ms per DVS client op: {op=GET|PUT|REPLACE|...}.
	MDVSOpMs = "dvs.op.ms"
	// MDVSOpErrors: counter. Failed DVS client ops, {op=...}.
	MDVSOpErrors = "dvs.op.errors"
	// MDVSShed: counter. DVS requests rejected with BUSY by admission
	// control, {reason=queue_full|queue_wait|deadline}.
	MDVSShed = "dvs.shed"
	// MDVSInflight: gauge. DVS requests currently executing.
	MDVSInflight = "dvs.server.inflight"
	// MDVSQueueDepth: gauge. DVS requests waiting for an execution slot.
	MDVSQueueDepth = "dvs.server.queue_depth"
	// MLBoneOpMs: histogram, ms per L-Bone client op: {op=register|lookup}.
	MLBoneOpMs = "lbone.op.ms"
	// MLBoneOpErrors: counter. Failed L-Bone client ops, {op=...}.
	MLBoneOpErrors = "lbone.op.errors"

	// --- client agent (also mirrored per-instance by agent.Stats) ---

	// MAgentFetchMs: histogram, ms end-to-end GetViewSet: {class=hit|lan-depot|wan|edge}.
	MAgentFetchMs = "agent.fetch.ms"
	// MAgentHits: counter. View set requests served from the agent cache.
	MAgentHits = "agent.cache.hits"
	// MAgentMisses: counter. View set requests that missed the cache.
	MAgentMisses = "agent.cache.misses"
	// MAgentHitRate: gauge via snapshot, hits/(hits+misses) of the LRU.
	MAgentHitRate = "agent.cache.hit_rate"
	// MAgentPrefetches: counter. Prefetch fetches issued on cursor moves.
	MAgentPrefetches = "agent.prefetch.issued"
	// MAgentPrefetchUseful: counter. Cache hits that a prefetch had loaded
	// (the prefetch-useful numerator; divide by agent.prefetch.issued).
	MAgentPrefetchUseful = "agent.prefetch.useful"
	// MAgentStaged: counter. View sets prestaged onto LAN depots.
	MAgentStaged = "agent.stage.completed"
	// MAgentStageErrors: counter. Failed prestaging transfers.
	MAgentStageErrors = "agent.stage.errors"
	// MAgentCoalesced: counter. View-set fetches that piggybacked on an
	// identical in-flight fetch instead of hitting the depots again.
	MAgentCoalesced = "agent.coalesced"

	// --- server agent render queue ---

	// MAgentRenderShed: counter. Render requests dropped by the bounded
	// LIFO queue, {reason=evicted|deadline}: evicted = pushed out by a
	// newer request when the queue was full (latest request wins), deadline
	// = every waiter's budget expired before the render started.
	MAgentRenderShed = "agent.render.shed"
	// MAgentRenderQueueDepth: gauge. Render requests queued behind the
	// renderer.
	MAgentRenderQueueDepth = "agent.render.queue_depth"

	// --- steward ---

	// MStewardCycleMs: histogram, ms per scan cycle.
	MStewardCycleMs = "steward.cycle.ms"
	// MStewardCycles: counter. Completed scan cycles.
	MStewardCycles = "steward.cycles"
	// MStewardRepairMs: histogram, ms per successful extent repair copy.
	MStewardRepairMs = "steward.repair.ms"
	// MStewardRenewals: counter. Leases renewed.
	MStewardRenewals = "steward.renewals"
	// MStewardRepairs: counter. Repair copies that succeeded.
	MStewardRepairs = "steward.repairs"
	// MStewardRepairFailures: counter. Repair attempts that failed.
	MStewardRepairFailures = "steward.repair_failures"
	// MStewardPruned: counter. Dead replicas pruned from exNodes.
	MStewardPruned = "steward.pruned"
	// MStewardExtentsLost: counter. Extents left with zero healthy replicas.
	MStewardExtentsLost = "steward.extents_lost"
	// MStewardAlertAudits: counter. Targeted audits run because an SLO
	// alert fired, ahead of the periodic cycle.
	MStewardAlertAudits = "steward.alert_audits"
	// MStewardHotsetWarms: counter. View sets replicated toward the edge
	// tier by the hot-set replicator ahead of demand.
	MStewardHotsetWarms = "steward.hotset.warms"
	// MStewardHotsetWarmErrors: counter. Hot-set warm attempts that failed.
	MStewardHotsetWarmErrors = "steward.hotset.warm_errors"

	// --- edge cache tier (internal/edge, served by cmd/lfedged) ---

	// MEdgeHits: counter. Edge LOADs served from the cached set (LAN cost).
	MEdgeHits = "edge.hits"
	// MEdgeMisses: counter. Edge LOADs that missed and went to a fill.
	MEdgeMisses = "edge.misses"
	// MEdgeFills: counter. Origin-depot fetches actually performed
	// (single-flight: concurrent misses on one extent fill once).
	MEdgeFills = "edge.fills"
	// MEdgeFillErrors: counter. Fills that failed (clients fail over to
	// the origin replicas).
	MEdgeFillErrors = "edge.fill_errors"
	// MEdgeCoalesced: counter. Misses that piggybacked on an in-flight
	// fill instead of fetching the origin again.
	MEdgeCoalesced = "edge.coalesced"
	// MEdgeFillMs: histogram, ms per origin fill.
	MEdgeFillMs = "edge.fill.ms"
	// MEdgeServeMs: histogram, ms per served request: {op=LOAD|STATUS}.
	MEdgeServeMs = "edge.serve.ms"
	// MEdgeBytesServed: counter. Payload bytes answered to clients.
	MEdgeBytesServed = "edge.bytes_served"
	// MEdgeShed: counter. Edge requests rejected with BUSY,
	// {reason=queue_full|queue_wait|deadline}.
	MEdgeShed = "edge.shed"

	// --- shared buffer pool (internal/bufpool, bridged by RegisterMetrics) ---

	// MBufpoolGets: counter. Buffers requested from the pool.
	MBufpoolGets = "bufpool.gets"
	// MBufpoolHits: counter. Gets satisfied by a recycled buffer.
	MBufpoolHits = "bufpool.hits"
	// MBufpoolMisses: counter. Gets that had to allocate a fresh buffer.
	MBufpoolMisses = "bufpool.misses"
	// MBufpoolPuts: counter. Buffers returned to the pool for reuse.
	MBufpoolPuts = "bufpool.puts"
	// MBufpoolOversize: counter. Gets larger than the biggest size class,
	// allocated directly and never pooled.
	MBufpoolOversize = "bufpool.oversize"
	// MBufpoolBytesCopied: counter. Payload bytes that crossed a
	// CopyTracked call — the residual memcpy budget of the zero-copy
	// data plane. A rising rate here means a hot path regressed into
	// copying again.
	MBufpoolBytesCopied = "bufpool.bytes_copied"

	// --- ibp pipelined transport (ibp.Pipe / ibp.PipePool) ---

	// MIBPPipeDepth: gauge. Tagged requests currently in flight across
	// all pipelined depot connections.
	MIBPPipeDepth = "ibp.pipe.depth"
	// MIBPPipeOps: counter. Operations issued through a PipePool,
	// {mode=pipelined|serial}; serial counts fallbacks to one-shot
	// connections against depots that do not speak PIPELINE.
	MIBPPipeOps = "ibp.pipe.ops"
	// MIBPPipeDials: counter. Pipelined connections established
	// (includes the PIPELINE handshake round trip).
	MIBPPipeDials = "ibp.pipe.dials"
	// MIBPPipeBroken: counter. Pipelined connections torn down mid-use
	// (read error, depot restart); in-flight requests fail over to lors
	// retry passes and the next op redials.
	MIBPPipeBroken = "ibp.pipe.broken"
	// MIBPPipeFallbacks: counter. Depots detected as old-protocol
	// (PIPELINE answered with ERR), pinned to serial mode.
	MIBPPipeFallbacks = "ibp.pipe.fallbacks"

	// --- SLO engine (internal/obs/slo) ---

	// MSLOEvaluations: counter. Rule-evaluation passes completed.
	MSLOEvaluations = "slo.evaluations"
	// MSLOAlertsFiring: gauge. Alerts currently in the firing state.
	MSLOAlertsFiring = "slo.alerts.firing"
	// MSLOTransitions: counter. Alert state transitions: {to=firing|resolved}.
	MSLOTransitions = "slo.transitions"

	// --- Go runtime (internal/obs/prof harvester, sampled each TSDB tick) ---

	// MRuntimeGCPauseMs: histogram, ms per GC stop-the-world pause (folded
	// from /gc/pauses:seconds bucket deltas).
	MRuntimeGCPauseMs = "runtime.go.gc.pause.ms"
	// MRuntimeSchedLatencyMs: histogram, ms a runnable goroutine waited for
	// a thread (folded from /sched/latencies:seconds bucket deltas). A fat
	// tail here means the process is CPU-starved or GOMAXPROCS-saturated.
	MRuntimeSchedLatencyMs = "runtime.go.sched.latency.ms"
	// MRuntimeHeapLiveBytes: gauge. Live heap bytes after the last GC.
	MRuntimeHeapLiveBytes = "runtime.go.heap.live.bytes"
	// MRuntimeHeapGoalBytes: gauge. The pacer's current heap-size goal.
	MRuntimeHeapGoalBytes = "runtime.go.heap.goal.bytes"
	// MRuntimeGoroutines: gauge. Live goroutine count.
	MRuntimeGoroutines = "runtime.go.goroutines"
	// MRuntimeMutexWaitMs: counter. Cumulative ms goroutines spent blocked
	// on sync.Mutex/RWMutex (from /sync/mutex/wait/total:seconds).
	MRuntimeMutexWaitMs = "runtime.go.mutex.wait.ms"
	// MRuntimeAllocBytes: counter. Cumulative heap bytes allocated; its
	// TSDB rate is the process's allocation throughput.
	MRuntimeAllocBytes = "runtime.go.alloc.bytes"
	// MRuntimeGCCycles: counter. Completed GC cycles.
	MRuntimeGCCycles = "runtime.go.gc.cycles"

	// --- flight recorder (internal/obs/prof.Recorder) ---

	// MCaptureBundles: counter. Forensic capture bundles recorded,
	// {trigger=alert|manual}.
	MCaptureBundles = "capture.bundles"
	// MCaptureSuppressed: counter. Capture triggers suppressed by the
	// cooldown or an in-flight capture (flap damping for the recorder).
	MCaptureSuppressed = "capture.suppressed"

	// --- obs self-accounting ---

	// MObsLabelOverflow: counter. Labeled metric lookups folded into the
	// per-family "other" instance by the registry's cardinality guard. A
	// nonzero value means some call site is labeling with an unbounded
	// value set (see Registry.MaxLabelInstances).
	MObsLabelOverflow = "obs.label_overflow"
	// MProcessUptime: gauge via snapshot, seconds since this process's
	// observability endpoint started serving. The fleet scraper reads it
	// for the health matrix's uptime column.
	MProcessUptime = "process.uptime_s"

	// --- fleet federation (internal/obs/fleet, hosted by lfsteward) ---

	// MFleetMembers: gauge. Fleet members by state, {state=up|degraded|down}.
	MFleetMembers = "fleet.members"
	// MFleetScrapes: counter. Completed fleet scrape passes.
	MFleetScrapes = "fleet.scrapes"
	// MFleetScrapeErrors: counter. Failed member scrapes, {node=addr}.
	MFleetScrapeErrors = "fleet.scrape.errors"
	// MFleetScrapeMs: histogram, ms per whole scrape pass (all members,
	// parallel fan-out included).
	MFleetScrapeMs = "fleet.scrape.ms"
	// MFleetFPS: gauge. Fleet-wide frames per second: summed reset-aware
	// view-set fetch rates of every member exposing agent.fetch.ms.
	MFleetFPS = "fleet.fps"
	// MFleetShed: counter. Cluster-level shed volume: per-node reset-aware
	// increases of ibp.shed, dvs.shed, edge.shed, and agent.render.shed
	// folded into one monotonic series (the fleet shed-burn numerator).
	MFleetShed = "fleet.shed"
	// MFleetServed: counter. Cluster-level served volume: per-node
	// reset-aware increases of the server-side op histograms folded into
	// one monotonic series (the fleet shed-burn denominator).
	MFleetServed = "fleet.served"
	// MFleetEdgeHitRate: gauge. Cooperative edge hit rate across every
	// edge member: sum(hits)/sum(hits+misses).
	MFleetEdgeHitRate = "fleet.edge.hit_rate"
	// MFleetCoverage: gauge. Live replicas of one published exNode's
	// thinnest extent, {exnode=name}: layouts intersected with the depot
	// members currently up, so a dying depot moves it immediately.
	MFleetCoverage = "fleet.replica.coverage"
	// MFleetCoverageMin: gauge. Minimum fleet.replica.coverage across all
	// published exNodes — the series the replica-coverage fleet rule
	// watches.
	MFleetCoverageMin = "fleet.replica.coverage.min"
	// MFleetDegradedRatio: gauge. Fraction of depot members not in the up
	// state (degraded or down over total registered depots).
	MFleetDegradedRatio = "fleet.depots.degraded_ratio"
	// MFleetLatencySpreadMs: gauge. Per-depot latency spread: max minus
	// min of the depot members' served-op p99 — a wide spread names a
	// straggler dragging the whole pipeline (the weakest-node view).
	MFleetLatencySpreadMs = "fleet.depot.latency.spread.ms"
	// MFleetNodeP99Ms: gauge. One member's served-op p99 as scraped,
	// {family=..., node=addr} — the per-node series behind the health
	// matrix's latency column and lftop -fleet sparklines.
	MFleetNodeP99Ms = "fleet.node.p99.ms"
)

// Span names used by the request-scoped traces at /debug/traces.
const (
	// SpanGetViewSet is the root span of one client-agent frame fetch.
	SpanGetViewSet = "agent.getviewset"
	// SpanResolve covers DVS exNode resolution inside a fetch.
	SpanResolve = "agent.resolve"
	// SpanDownload covers one lors.Download inside a fetch.
	SpanDownload = "agent.download"
	// SpanStage covers one staging third-party copy inside a fetch.
	SpanStage = "agent.stage"
	// SpanIBPServe is a depot's server-side span for one IBP verb, parented
	// under the calling client's span via the trace= line token: {op=...}.
	SpanIBPServe = "ibp.serve"
	// SpanDVSServe is the DVS server's span for one served verb: {op=...}.
	SpanDVSServe = "dvs.serve"
	// SpanLBoneServe is the L-Bone server's span for one HTTP request,
	// parented via the X-Lonviz-Trace header: {op=register|lookup}.
	SpanLBoneServe = "lbone.serve"
	// SpanRenderServe is the server agent's span for one RENDER request.
	SpanRenderServe = "render.serve"
	// SpanLorsExtent covers one extent fetch (all failover passes) inside
	// a lors.Download.
	SpanLorsExtent = "lors.extent"
	// SpanLorsAttempt covers one replica load attempt inside an extent
	// fetch; failed attempts carry an "err" attribute, making the paper's
	// mid-download depot failover visible in the merged tree.
	SpanLorsAttempt = "lors.attempt"
	// SpanStewardCycle covers one steward scan cycle.
	SpanStewardCycle = "steward.cycle"
	// SpanStewardRepair covers one steward repair copy.
	SpanStewardRepair = "steward.repair"
	// SpanStewardAlertAudit covers one alert-triggered targeted audit
	// (the steward reacting to a firing SLO alert ahead of its cycle).
	SpanStewardAlertAudit = "steward.alert_audit"
	// SpanSLOEvaluate covers one SLO rule-evaluation pass; alert
	// transition events stamp its trace ID, joining /debug/alerts state
	// changes against /debug/events.
	SpanSLOEvaluate = "slo.evaluate"
	// SpanEdgeServe is the edge tier's server-side span for one served
	// verb, parented under the calling client's span: {op=LOAD|STATUS}.
	SpanEdgeServe = "edge.serve"
	// SpanEdgeFill covers one origin-depot fill inside an edge miss.
	SpanEdgeFill = "edge.fill"
	// SpanFleetScrape covers one fleet scrape pass, recorded only on
	// passes where a member changed state (recording every pass would
	// flood the ring at the poll rate); the fleet.member events stamp its
	// trace ID.
	SpanFleetScrape = "fleet.scrape"
)

// Event names used by the structured log at /debug/events. Events are
// the narrative complement to spans: low-rate, high-signal moments
// (failovers, trips, repairs) stamped with the active trace/span ID so
// they join against /debug/traces across hosts.
const (
	// EvLorsFailover: warn. A replica load attempt failed and the download
	// is moving to the next replica; fields: extent, replica, err.
	EvLorsFailover = "lors.failover"
	// EvLorsCircuitOpen: warn. The health tracker opened a depot's
	// circuit; fields: depot.
	EvLorsCircuitOpen = "lors.circuit_open"
	// EvAgentFetch: debug (one per access is too chatty for info). One
	// GetViewSet completed; fields: viewset, class, ms.
	EvAgentFetch = "agent.fetch"
	// EvIBPServeErr: warn. A depot answered a request with ERR; fields:
	// op, err.
	EvIBPServeErr = "ibp.serve_err"
	// EvShed: warn. Admission control rejected or dropped work under
	// overload; fields: component, reason.
	EvShed = "overload.shed"
	// EvStewardRepairDone: info. A repair copy finished; fields: dataset,
	// extent, depot, ok.
	EvStewardRepairDone = "steward.repair_done"
	// EvSLOAlert: warn on firing, info on resolved. An SLO alert changed
	// state; fields: rule, instance, state, severity, value, threshold.
	EvSLOAlert = "slo.alert"
	// EvStewardAlertTrigger: info. The steward received a firing alert
	// and queued a targeted audit; fields: rule, depot.
	EvStewardAlertTrigger = "steward.alert_trigger"
	// EvEdgeFillErr: warn. An edge origin fill failed (clients fall back
	// to origin replicas); fields: origin, hint, err.
	EvEdgeFillErr = "edge.fill_err"
	// EvStewardHotsetWarm: info. The hot-set replicator warmed one view
	// set into the edge tier; fields: hint, ok.
	EvStewardHotsetWarm = "steward.hotset_warm"
	// EvCaptureBundle: info. The flight recorder finished a forensic
	// bundle; fields: id, trigger, files, bytes.
	EvCaptureBundle = "capture.bundle"
	// EvFleetMember: warn when a member leaves the up state, info when it
	// returns. One fleet member's health-matrix state changed; fields:
	// node, kind, from, to, err.
	EvFleetMember = "fleet.member"
)
