package prof

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"lonviz/internal/obs"
)

// RecorderConfig configures NewRecorder.
type RecorderConfig struct {
	// Registry receives the capture.* counters; nil means obs.Default().
	Registry *obs.Registry
	// Tracer's recent span ring is snapshotted into spans.json; nil means
	// obs.DefaultTracer().
	Tracer *obs.Tracer
	// Logger's event ring is snapshotted into events.json (and receives
	// the capture.bundle event); nil means obs.DefaultLogger().
	Logger *obs.Logger
	// TSDB's retained window is snapshotted into tsdb.json (nil skips it).
	TSDB *obs.TSDB
	// CPUProfile is how long the labeled CPU profile records (default 2s).
	CPUProfile time.Duration
	// Cooldown is the minimum spacing between captures: alert triggers
	// inside it are suppressed, so a flapping alert cannot thrash the
	// process with back-to-back profiles (default 2m).
	Cooldown time.Duration
	// Capacity bounds the in-memory bundle ring; the oldest bundle is
	// evicted when a new one lands (default 4).
	Capacity int
	// TSDBWindow is how far back tsdb.json reaches (default 5m).
	TSDBWindow time.Duration
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Bundle is one forensic capture: everything an engineer would have
// pulled by hand had they been attached when the alert fired.
type Bundle struct {
	// ID names the bundle in the /debug/capture index and download URLs.
	ID string `json:"id"`
	// Time is when the capture started.
	Time time.Time `json:"time"`
	// Trigger records what started it: "alert:<rule>" or "manual".
	Trigger string `json:"trigger"`
	// Note carries the alert reason (or the manual caller's note).
	Note string `json:"note,omitempty"`
	// Files maps file name to contents: cpu.pprof, heap.pprof,
	// goroutines.txt (debug=1, includes pprof labels), goroutines-full.txt
	// (debug=2, full stacks), mutex.pprof, block.pprof, spans.json,
	// events.json, tsdb.json. A file that failed to record is replaced by
	// an entry in errors.txt rather than failing the bundle.
	Files map[string][]byte `json:"-"`
}

// bundleInfo is the JSON shape of one bundle in the index (file sizes
// instead of contents).
type bundleInfo struct {
	ID      string         `json:"id"`
	Time    time.Time      `json:"time"`
	Trigger string         `json:"trigger"`
	Note    string         `json:"note,omitempty"`
	Files   map[string]int `json:"files"`
}

// ErrCaptureBusy reports a capture already in flight.
var ErrCaptureBusy = errors.New("prof: capture already in flight")

// ErrRecorderClosed reports a capture attempted after Close.
var ErrRecorderClosed = errors.New("prof: recorder closed")

// Recorder is the flight recorder: a bounded in-memory ring of forensic
// bundles, recorded automatically when a critical SLO alert fires
// (slo.Start subscribes TriggerAsync next to steward.AlertTrigger) or
// manually via POST /debug/capture. All methods are safe for concurrent
// use and on a nil receiver (the -metrics-addr-off path holds none).
type Recorder struct {
	cfg RecorderConfig

	mu      sync.Mutex
	bundles []*Bundle // oldest first
	last    time.Time // start time of the most recent capture
	busy    bool
	closed  bool
	seq     int
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewRecorder builds a recorder. It starts no goroutines until a capture
// triggers.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.DefaultTracer()
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DefaultLogger()
	}
	if cfg.CPUProfile <= 0 {
		cfg.CPUProfile = 2 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Minute
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4
	}
	if cfg.TSDBWindow <= 0 {
		cfg.TSDBWindow = 5 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Recorder{cfg: cfg, stop: make(chan struct{})}
}

// TriggerAsync starts a capture on its own goroutine, returning
// immediately — the path the SLO engine's subscriber callback takes
// (callbacks must not block, and a capture takes CPUProfile seconds).
// Triggers inside the cooldown, during an in-flight capture, or after
// Close are suppressed (counted in capture.suppressed) and return false.
func (r *Recorder) TriggerAsync(trigger, note string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	now := r.cfg.Clock()
	if r.closed || r.busy || (!r.last.IsZero() && now.Sub(r.last) < r.cfg.Cooldown) {
		r.mu.Unlock()
		r.cfg.Registry.Counter(obs.MCaptureSuppressed).Inc()
		return false
	}
	r.busy = true
	r.last = now
	r.seq++
	id := r.bundleID(now)
	r.wg.Add(1)
	r.mu.Unlock()

	go func() {
		defer r.wg.Done()
		b := r.record(id, now, trigger, note)
		r.finish(b, "alert")
	}()
	return true
}

// Capture records a bundle synchronously — the POST /debug/capture path.
// It bypasses the cooldown (a human asked) but still refuses while
// another capture is in flight.
func (r *Recorder) Capture(trigger, note string) (*Bundle, error) {
	if r == nil {
		return nil, ErrRecorderClosed
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRecorderClosed
	}
	if r.busy {
		r.mu.Unlock()
		r.cfg.Registry.Counter(obs.MCaptureSuppressed).Inc()
		return nil, ErrCaptureBusy
	}
	now := r.cfg.Clock()
	r.busy = true
	r.last = now
	r.seq++
	id := r.bundleID(now)
	r.wg.Add(1)
	r.mu.Unlock()

	defer r.wg.Done()
	b := r.record(id, now, trigger, note)
	r.finish(b, "manual")
	return b, nil
}

// bundleID names a bundle. Caller holds r.mu (seq was just advanced).
func (r *Recorder) bundleID(now time.Time) string {
	return fmt.Sprintf("c%03d-%s", r.seq, now.UTC().Format("20060102T150405"))
}

// finish lands a recorded bundle in the ring (evicting the oldest past
// Capacity), clears the busy latch, and accounts the capture.
func (r *Recorder) finish(b *Bundle, kind string) {
	r.mu.Lock()
	r.bundles = append(r.bundles, b)
	for len(r.bundles) > r.cfg.Capacity {
		r.bundles = r.bundles[1:]
	}
	r.busy = false
	r.mu.Unlock()

	total := 0
	for _, f := range b.Files {
		total += len(f)
	}
	r.cfg.Registry.Counter(obs.Label(obs.MCaptureBundles, "trigger", kind)).Inc()
	r.cfg.Logger.Info(context.Background(), obs.EvCaptureBundle,
		"id", b.ID, "trigger", b.Trigger,
		"files", fmt.Sprint(len(b.Files)), "bytes", fmt.Sprint(total))
}

// record performs the capture itself. It runs outside r.mu (a capture
// takes CPUProfile seconds); the busy latch guarantees one at a time.
// Individual snapshot failures land in errors.txt instead of failing
// the bundle — partial forensics beat none.
func (r *Recorder) record(id string, now time.Time, trigger, note string) *Bundle {
	b := &Bundle{ID: id, Time: now, Trigger: trigger, Note: note, Files: make(map[string][]byte)}
	var errs bytes.Buffer

	// Labeled CPU profile first: it must observe the pathology while the
	// alert is still hot. StartCPUProfile fails if a profile is already
	// running (e.g. an operator on /debug/pprof/profile) — record why and
	// keep the rest of the bundle.
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		fmt.Fprintf(&errs, "cpu.pprof: %v\n", err)
	} else {
		select {
		case <-time.After(r.cfg.CPUProfile):
		case <-r.stop:
			// Shutdown mid-capture: stop profiling now and keep whatever
			// was recorded, so Close never waits the full window.
		}
		pprof.StopCPUProfile()
		b.Files["cpu.pprof"] = cpu.Bytes()
	}

	snap := func(name, profile string, debug int) {
		p := pprof.Lookup(profile)
		if p == nil {
			fmt.Fprintf(&errs, "%s: no %s profile\n", name, profile)
			return
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, debug); err != nil {
			fmt.Fprintf(&errs, "%s: %v\n", name, err)
			return
		}
		b.Files[name] = buf.Bytes()
	}
	snap("heap.pprof", "heap", 0)
	// debug=1 renders text with the goroutines' pprof labels inline —
	// the "what was every request doing" view of the incident.
	snap("goroutines.txt", "goroutine", 1)
	snap("goroutines-full.txt", "goroutine", 2)
	snap("mutex.pprof", "mutex", 0)
	snap("block.pprof", "block", 0)

	if data, err := json.MarshalIndent(r.cfg.Tracer.Export(0), "", " "); err == nil {
		b.Files["spans.json"] = data
	} else {
		fmt.Fprintf(&errs, "spans.json: %v\n", err)
	}
	if data, err := json.MarshalIndent(r.cfg.Logger.Events(), "", " "); err == nil {
		b.Files["events.json"] = data
	} else {
		fmt.Fprintf(&errs, "events.json: %v\n", err)
	}
	if db := r.cfg.TSDB; db != nil {
		window := map[string][]obs.Point{}
		since := r.cfg.Clock().Add(-r.cfg.TSDBWindow)
		for _, name := range db.Names() {
			if pts := db.Points(name, since); len(pts) > 0 {
				window[name] = pts
			}
		}
		if data, err := json.MarshalIndent(window, "", " "); err == nil {
			b.Files["tsdb.json"] = data
		} else {
			fmt.Fprintf(&errs, "tsdb.json: %v\n", err)
		}
	}
	if errs.Len() > 0 {
		b.Files["errors.txt"] = errs.Bytes()
	}
	return b
}

// Bundles returns the retained bundles, oldest first.
func (r *Recorder) Bundles() []*Bundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Bundle(nil), r.bundles...)
}

// Close interrupts any in-flight capture (its CPU profile stops early
// and the partial bundle still lands) and waits for it to finish.
// Idempotent; after Close every trigger is refused.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.stop)
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Handler serves the capture ring:
//
//	GET  /debug/capture            index of retained bundles (JSON)
//	POST /debug/capture            record a bundle now (blocks; 409 if busy)
//	GET  /debug/capture/<id>       one bundle's metadata (JSON)
//	GET  /debug/capture/<id>/<file> raw file download
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, "/debug/capture")
		rest = strings.Trim(rest, "/")
		if rest == "" {
			if req.Method == http.MethodPost {
				r.servePost(w, req)
				return
			}
			r.serveIndex(w)
			return
		}
		id, file, _ := strings.Cut(rest, "/")
		var bundle *Bundle
		for _, b := range r.Bundles() {
			if b.ID == id {
				bundle = b
				break
			}
		}
		if bundle == nil {
			http.Error(w, "no such bundle (it may have been evicted)", http.StatusNotFound)
			return
		}
		if file == "" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(bundleIndexEntry(bundle))
			return
		}
		data, ok := bundle.Files[file]
		if !ok {
			http.Error(w, "no such file in bundle", http.StatusNotFound)
			return
		}
		if strings.HasSuffix(file, ".json") {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
		} else if strings.HasSuffix(file, ".txt") {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "application/octet-stream")
		}
		_, _ = w.Write(data)
	})
}

func bundleIndexEntry(b *Bundle) bundleInfo {
	info := bundleInfo{ID: b.ID, Time: b.Time, Trigger: b.Trigger, Note: b.Note, Files: make(map[string]int, len(b.Files))}
	for name, data := range b.Files {
		info.Files[name] = len(data)
	}
	return info
}

// captureIndex is the JSON shape of GET /debug/capture.
type captureIndex struct {
	Bundles []bundleInfo `json:"bundles"`
}

func (r *Recorder) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	idx := captureIndex{Bundles: []bundleInfo{}}
	for _, b := range r.Bundles() {
		idx.Bundles = append(idx.Bundles, bundleIndexEntry(b))
	}
	// Newest first: the bundle an operator wants is almost always the
	// latest one.
	sort.Slice(idx.Bundles, func(i, j int) bool { return idx.Bundles[i].Time.After(idx.Bundles[j].Time) })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(idx)
}

func (r *Recorder) servePost(w http.ResponseWriter, req *http.Request) {
	note := req.URL.Query().Get("note")
	b, err := r.Capture("manual", note)
	switch {
	case errors.Is(err, ErrCaptureBusy):
		http.Error(w, err.Error(), http.StatusConflict)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(bundleIndexEntry(b))
}
