package prof

import (
	"math"
	"runtime"
	"testing"

	"lonviz/internal/obs"
)

// TestHarvesterEagerRegistration: construction alone must register every
// runtime.* family at zero, so an idle process's TSDB index lists them
// from the first sample (check.sh's smoke depends on this).
func TestHarvesterEagerRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	before := runtime.NumGoroutine()
	h := NewHarvester(reg)
	if h == nil {
		t.Fatal("NewHarvester returned nil")
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("NewHarvester started %d goroutines, want 0", after-before)
	}
	names := map[string]bool{}
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, want := range []string{
		obs.MRuntimeGCPauseMs, obs.MRuntimeSchedLatencyMs,
		obs.MRuntimeHeapLiveBytes, obs.MRuntimeHeapGoalBytes,
		obs.MRuntimeGoroutines, obs.MRuntimeMutexWaitMs,
		obs.MRuntimeAllocBytes, obs.MRuntimeGCCycles,
	} {
		if !names[want] {
			t.Errorf("family %s not registered at construction", want)
		}
	}
	if c := reg.Histogram(obs.MRuntimeGCPauseMs).Count(); c != 0 {
		t.Errorf("gc pause histogram count = %d before first harvest, want 0", c)
	}
}

// TestHarvestFoldsRuntimeActivity: the first pass primes the cumulative
// baselines without recording (process history must not be attributed to
// the sampling window); GC and allocator activity between passes shows
// up as deltas.
func TestHarvestFoldsRuntimeActivity(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHarvester(reg)

	h.Harvest() // priming pass
	if v := reg.Counter(obs.MRuntimeGCCycles).Value(); v != 0 {
		t.Errorf("priming pass recorded %d gc cycles, want 0", v)
	}
	if v := reg.Counter(obs.MRuntimeAllocBytes).Value(); v != 0 {
		t.Errorf("priming pass recorded %d alloc bytes, want 0", v)
	}

	// Generate allocator and GC activity, then harvest the deltas.
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 64*1024))
	}
	_ = sink
	runtime.GC()
	runtime.GC()
	h.Harvest()

	if v := reg.Counter(obs.MRuntimeGCCycles).Value(); v < 2 {
		t.Errorf("gc cycles after two forced GCs = %d, want >= 2", v)
	}
	if v := reg.Counter(obs.MRuntimeAllocBytes).Value(); v < 256*64*1024 {
		t.Errorf("alloc bytes delta = %d, want >= %d", v, 256*64*1024)
	}
	if c := reg.Histogram(obs.MRuntimeGCPauseMs).Count(); c < 1 {
		t.Errorf("gc pause histogram count = %d after forced GCs, want >= 1", c)
	}
	if v := reg.Gauge(obs.MRuntimeGoroutines).Value(); v < 1 {
		t.Errorf("goroutines gauge = %d, want >= 1", v)
	}
	if v := reg.Gauge(obs.MRuntimeHeapLiveBytes).Value(); v <= 0 {
		t.Errorf("heap live gauge = %d, want > 0", v)
	}
	if v := reg.Gauge(obs.MRuntimeHeapGoalBytes).Value(); v <= 0 {
		t.Errorf("heap goal gauge = %d, want > 0", v)
	}

	// Counters are monotone: an immediate re-harvest must not shrink them.
	gc, alloc := reg.Counter(obs.MRuntimeGCCycles).Value(), reg.Counter(obs.MRuntimeAllocBytes).Value()
	h.Harvest()
	if v := reg.Counter(obs.MRuntimeGCCycles).Value(); v < gc {
		t.Errorf("gc cycle counter went backwards: %d -> %d", gc, v)
	}
	if v := reg.Counter(obs.MRuntimeAllocBytes).Value(); v < alloc {
		t.Errorf("alloc byte counter went backwards: %d -> %d", alloc, v)
	}
}

// TestHarvesterNilSafe: the disabled path holds no harvester at all, and
// nil method calls must be inert.
func TestHarvesterNilSafe(t *testing.T) {
	var h *Harvester
	h.Harvest()
}

// TestBucketMid covers the infinite-edge clamping of the runtime
// histogram representative values.
func TestBucketMid(t *testing.T) {
	edges := []float64{math.Inf(-1), 0.001, 0.002, math.Inf(1)}
	if got := bucketMid(edges, 0); got != 0.001 {
		t.Errorf("(-inf, 0.001] mid = %v, want 0.001", got)
	}
	if got := bucketMid(edges, 1); got != 0.0015 {
		t.Errorf("[0.001, 0.002) mid = %v, want 0.0015", got)
	}
	if got := bucketMid(edges, 2); got != 0.002 {
		t.Errorf("[0.002, +inf) mid = %v, want 0.002", got)
	}
}
