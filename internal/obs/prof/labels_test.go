package prof

import (
	"context"
	"runtime/pprof"
	"testing"
)

// TestLabelsOffPathAllocs pins the acceptance contract: with the label
// gate off (the -metrics-addr-unset path) the fixed-arity wrappers on
// the wire-hot serve loops are zero-alloc no-ops, so unobserved
// deployments pay nothing per request.
func TestLabelsOffPathAllocs(t *testing.T) {
	if LabelsEnabled() {
		t.Fatal("label gate unexpectedly on at test start")
	}
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		lctx := Begin1(ctx, KeyClass, "ibp")
		End(ctx)
		lctx = Begin2(ctx, KeyClass, "ibp", KeyVerb, "LOAD")
		End(ctx)
		lctx = Begin3(ctx, KeyClass, "ibp_client", KeyVerb, "STORE", KeyDepot, "d:1")
		End(ctx)
		_ = lctx
	}); n != 0 {
		t.Errorf("Begin/End allocs while disabled = %v, want 0", n)
	}
}

// TestBeginOffPathReturnsSameContext: with the gate off the wrappers
// must not even wrap the context.
func TestBeginOffPathReturnsSameContext(t *testing.T) {
	SetLabelsEnabled(false)
	ctx := context.Background()
	if lctx := Begin2(ctx, KeyClass, "x", KeyVerb, "y"); lctx != ctx {
		t.Error("Begin2 wrapped the context with the gate off")
	}
	ran := false
	Do(ctx, func(c context.Context) {
		ran = true
		if c != ctx {
			t.Error("Do wrapped the context with the gate off")
		}
	}, KeyClass, "x")
	if !ran {
		t.Error("Do did not call fn with the gate off")
	}
}

// TestBeginAppliesAndEndRestoresLabels exercises the on path: Begin
// labels the goroutine (visible on the returned context), nested Begins
// merge, and End(preBeginCtx) restores the previous label set.
func TestBeginAppliesAndEndRestoresLabels(t *testing.T) {
	SetLabelsEnabled(true)
	t.Cleanup(func() { SetLabelsEnabled(false) })

	ctx := context.Background()
	lctx := Begin2(ctx, KeyClass, "ibp", KeyVerb, "LOAD")
	if v, ok := pprof.Label(lctx, KeyClass); !ok || v != "ibp" {
		t.Fatalf("class label = %q,%v, want ibp,true", v, ok)
	}
	if v, _ := pprof.Label(lctx, KeyVerb); v != "LOAD" {
		t.Fatalf("verb label = %q, want LOAD", v)
	}

	// Nested Begin on the labeled context merges; End back to lctx then
	// back to the original restores each layer.
	l2 := Begin1(lctx, KeyDepot, "127.0.0.1:6714")
	if v, _ := pprof.Label(l2, KeyClass); v != "ibp" {
		t.Errorf("nested Begin dropped outer class label, got %q", v)
	}
	if v, _ := pprof.Label(l2, KeyDepot); v != "127.0.0.1:6714" {
		t.Errorf("nested depot label = %q", v)
	}
	End(lctx)
	End(ctx)

	// The goroutine's label set is observable through a fresh WithLabels
	// round trip only indirectly; assert via Do, whose callback context
	// must carry exactly the pairs it was given once End has run.
	Do(ctx, func(c context.Context) {
		if v, _ := pprof.Label(c, KeyClass); v != "render" {
			t.Errorf("Do ctx class = %q, want render", v)
		}
		if _, ok := pprof.Label(c, KeyDepot); ok {
			t.Error("Do ctx carries a stale depot label after End")
		}
	}, KeyClass, "render")
}

// TestDoRestoresOnReturn: after Do returns, a subsequent Begin from the
// clean context must not see the closure's labels.
func TestDoRestoresOnReturn(t *testing.T) {
	SetLabelsEnabled(true)
	t.Cleanup(func() { SetLabelsEnabled(false) })

	ctx := context.Background()
	Do(ctx, func(c context.Context) {}, KeyClass, "agent_fetch", KeyVerb, "wan")
	lctx := Begin1(ctx, KeyClass, "steward_repair")
	defer End(ctx)
	if _, ok := pprof.Label(lctx, KeyVerb); ok {
		t.Error("verb label leaked out of Do into the next Begin")
	}
}
