// Package prof is the runtime self-profiling layer of the observability
// stack: pprof label attribution for the hot paths, a runtime/metrics
// harvester that feeds the TSDB's runtime.* families, and a flight
// recorder that captures forensic bundles when a critical SLO alert
// fires. slo.Start wires all three behind -metrics-addr; with metrics
// off none of it runs and the label wrappers are zero-alloc no-ops
// (pinned by TestLabelsOffPathAllocs, the same contract as the trace
// propagation gate).
package prof

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
)

// Label keys the instrumented hot paths use. Every CPU/goroutine profile
// of a loaded process slices by these: class = which workload
// (ibp|dvs|render|wan|lan-depot|edge|edge_fill|steward_repair), verb =
// the wire verb being served, depot = the depot address being talked to.
const (
	KeyClass = "class"
	KeyVerb  = "verb"
	KeyDepot = "depot"
)

var labelsOn atomic.Bool

// SetLabelsEnabled turns pprof label attribution on or off process-wide.
// slo.Start enables it with the rest of the stack; tests flip it
// directly.
func SetLabelsEnabled(on bool) { labelsOn.Store(on) }

// LabelsEnabled reports whether the hot-path wrappers are applying
// labels.
func LabelsEnabled() bool { return labelsOn.Load() }

// Do runs fn under the given pprof label pairs (k1, v1, k2, v2, ...),
// restoring the previous labels when fn returns. With the gate off it
// calls fn directly. Meant for sites that already allocate per call
// (agent fetches, edge fills, steward repairs): the closure and the
// variadic slice escape regardless of the gate, so wire-level hot loops
// use Begin/End instead.
func Do(ctx context.Context, fn func(context.Context), kv ...string) {
	if !labelsOn.Load() {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(kv...), fn)
}

// Begin1 applies one label pair to the calling goroutine and returns the
// labeled context. The caller must pair it with End(ctx) on the ORIGINAL
// context so the goroutine's previous label set is restored:
//
//	lctx := prof.Begin1(ctx, prof.KeyClass, "dvs")
//	defer prof.End(ctx)
//
// With the gate off it returns ctx unchanged and performs no allocation
// (fixed string parameters never escape), so per-request server loops
// call it unconditionally.
func Begin1(ctx context.Context, k1, v1 string) context.Context {
	if !labelsOn.Load() {
		return ctx
	}
	lctx := pprof.WithLabels(ctx, pprof.Labels(k1, v1))
	pprof.SetGoroutineLabels(lctx)
	return lctx
}

// Begin2 is Begin1 with two label pairs.
func Begin2(ctx context.Context, k1, v1, k2, v2 string) context.Context {
	if !labelsOn.Load() {
		return ctx
	}
	lctx := pprof.WithLabels(ctx, pprof.Labels(k1, v1, k2, v2))
	pprof.SetGoroutineLabels(lctx)
	return lctx
}

// Begin3 is Begin1 with three label pairs.
func Begin3(ctx context.Context, k1, v1, k2, v2, k3, v3 string) context.Context {
	if !labelsOn.Load() {
		return ctx
	}
	lctx := pprof.WithLabels(ctx, pprof.Labels(k1, v1, k2, v2, k3, v3))
	pprof.SetGoroutineLabels(lctx)
	return lctx
}

// End restores the goroutine's labels to the set ctx carries — pass the
// context from BEFORE the matching Begin call, not Begin's return value.
// No-op (and alloc-free) with the gate off.
func End(ctx context.Context) {
	if !labelsOn.Load() {
		return
	}
	pprof.SetGoroutineLabels(ctx)
}
