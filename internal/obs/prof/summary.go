package prof

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Summary is the runtime fingerprint lfbench attaches to each BENCH
// report: how hard the benchmark leaned on the allocator, the GC, and
// the scheduler. Regressions carry their runtime cause with them.
type Summary struct {
	// DurationSec is the collection window.
	DurationSec float64 `json:"duration_sec"`
	// AllocRateMBs is heap allocation throughput over the window, MB/s.
	AllocRateMBs float64 `json:"alloc_rate_mb_s"`
	// GCPauseP99Ms is the p99 stop-the-world pause over the window, ms.
	GCPauseP99Ms float64 `json:"gc_pause_p99_ms"`
	// GCCycles is how many GC cycles completed during the window.
	GCCycles int64 `json:"gc_cycles"`
	// PeakGoroutines is the highest sampled goroutine count.
	PeakGoroutines int64 `json:"peak_goroutines"`
}

// SummaryCollector samples runtime/metrics on an interval between
// StartSummary and Stop, producing a Summary of the window.
type SummaryCollector struct {
	start    time.Time
	interval time.Duration
	stop     chan struct{}
	wg       sync.WaitGroup

	mu         sync.Mutex
	peak       int64
	firstAlloc uint64
	firstGC    uint64
	pauseBase  []uint64 // cumulative pause counts at Start
	lastPause  *metrics.Float64Histogram
	lastAlloc  uint64
	lastGC     uint64
}

// StartSummary begins sampling every interval (default 100ms).
func StartSummary(interval time.Duration) *SummaryCollector {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	c := &SummaryCollector{start: time.Now(), interval: interval, stop: make(chan struct{})}
	c.sample()
	c.mu.Lock()
	c.firstAlloc = c.lastAlloc
	c.firstGC = c.lastGC
	if c.lastPause != nil {
		c.pauseBase = append([]uint64(nil), c.lastPause.Counts...)
	}
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.sample()
			}
		}
	}()
	return c
}

func (c *SummaryCollector) sample() {
	samples := []metrics.Sample{
		{Name: rmAllocBytes},
		{Name: rmGCCycles},
		{Name: rmGCPauses},
		{Name: rmGoroutines},
	}
	metrics.Read(samples)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range samples {
		s := &samples[i]
		switch s.Name {
		case rmAllocBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				c.lastAlloc = s.Value.Uint64()
			}
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				c.lastGC = s.Value.Uint64()
			}
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				c.lastPause = s.Value.Float64Histogram()
			}
		case rmGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				if g := int64(s.Value.Uint64()); g > c.peak {
					c.peak = g
				}
			}
		}
	}
}

// Stop takes a final sample, stops the collector, and returns the
// window's summary.
func (c *SummaryCollector) Stop() Summary {
	if c == nil {
		return Summary{}
	}
	close(c.stop)
	c.wg.Wait()
	c.sample()

	c.mu.Lock()
	defer c.mu.Unlock()
	out := Summary{
		DurationSec:    time.Since(c.start).Seconds(),
		GCCycles:       int64(c.lastGC - c.firstGC),
		PeakGoroutines: c.peak,
	}
	if out.DurationSec > 0 {
		out.AllocRateMBs = float64(c.lastAlloc-c.firstAlloc) / (1 << 20) / out.DurationSec
	}
	out.GCPauseP99Ms = pauseQuantile(c.lastPause, c.pauseBase, 0.99) * 1e3
	return out
}

// pauseQuantile computes the q-quantile (seconds) of the pause
// distribution accumulated since base, interpolating inside the
// containing runtime histogram bucket.
func pauseQuantile(cur *metrics.Float64Histogram, base []uint64, q float64) float64 {
	if cur == nil {
		return 0
	}
	delta := make([]uint64, len(cur.Counts))
	var total uint64
	for i, n := range cur.Counts {
		d := n
		if i < len(base) && base[i] <= n {
			d = n - base[i]
		}
		delta[i] = d
		total += d
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	last := 0.0
	for i, d := range delta {
		if d == 0 {
			continue
		}
		lo, hi := cur.Buckets[i], cur.Buckets[i+1]
		if math.IsInf(hi, 1) {
			hi = lo
		}
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if float64(cum+d) >= rank {
			frac := (rank - float64(cum)) / float64(d)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += d
		last = hi
	}
	return last
}
