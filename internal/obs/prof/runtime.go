package prof

import (
	"math"
	"runtime/metrics"

	"lonviz/internal/obs"
)

// The runtime/metrics names the harvester samples. Histograms are
// cumulative, so each pass folds the per-bucket increase since the
// previous pass into the registry histogram; counters likewise add the
// increase; gauges store the absolute value.
const (
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
	rmHeapLive   = "/gc/heap/live:bytes"
	rmHeapGoal   = "/gc/heap/goal:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmMutexWait  = "/sync/mutex/wait/total:seconds"
	rmAllocBytes = "/gc/heap/allocs:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
)

// Harvester samples runtime/metrics into the registry's runtime.*
// families. It is driven by the TSDB's PreSample hook (under the TSDB's
// sample lock), so one Harvest runs at a time and the previous-snapshot
// state needs no locking. Construction registers every family eagerly,
// so the series exist (at zero) from the first sample — check.sh's smoke
// asserts runtime.go.gc.pause.ms appears in /debug/tsdb on an idle
// process.
type Harvester struct {
	reg     *obs.Registry
	samples []metrics.Sample

	gcPause   *histFold
	schedLat  *histFold
	mutexAcc  float64 // fractional ms carried between passes
	prevMutex float64
	prevAlloc uint64
	prevGC    uint64
	primed    bool
}

// histFold folds one cumulative runtime Float64Histogram into an
// obs.Histogram, tracking the previous pass's counts so each pass adds
// only the new observations.
type histFold struct {
	dst    *obs.Histogram
	scale  float64 // applied to bucket edges (seconds -> ms)
	prev   []uint64
	primed bool
}

// fold adds cur's increase over the previous pass to dst, representing
// each bucket by its midpoint (edges scaled by scale; infinite edges
// clamp to the finite one).
func (f *histFold) fold(cur *metrics.Float64Histogram) {
	if cur == nil {
		return
	}
	if len(f.prev) != len(cur.Counts) {
		f.prev = make([]uint64, len(cur.Counts))
		f.primed = false
	}
	for i, n := range cur.Counts {
		d := int64(n - f.prev[i])
		f.prev[i] = n
		if !f.primed || d <= 0 {
			continue
		}
		f.dst.AddSample(bucketMid(cur.Buckets, i)*f.scale, d)
	}
	f.primed = true
}

// bucketMid returns a representative value for bucket i of a runtime
// Float64Histogram (Counts[i] covers [Buckets[i], Buckets[i+1])).
func bucketMid(edges []float64, i int) float64 {
	lo, hi := edges[i], edges[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}

// NewHarvester builds a harvester recording into reg (nil means
// obs.Default()). It starts no goroutines; wire Harvest as the TSDB's
// PreSample hook.
func NewHarvester(reg *obs.Registry) *Harvester {
	if reg == nil {
		reg = obs.Default()
	}
	h := &Harvester{reg: reg}
	for _, name := range []string{
		rmGCPauses, rmSchedLat, rmHeapLive, rmHeapGoal,
		rmGoroutines, rmMutexWait, rmAllocBytes, rmGCCycles,
	} {
		h.samples = append(h.samples, metrics.Sample{Name: name})
	}
	// Eager registration: the families must exist at zero before the
	// first runtime event (an idle process may not GC for minutes).
	h.gcPause = &histFold{dst: reg.Histogram(obs.MRuntimeGCPauseMs), scale: 1e3}
	h.schedLat = &histFold{dst: reg.Histogram(obs.MRuntimeSchedLatencyMs), scale: 1e3}
	reg.Gauge(obs.MRuntimeHeapLiveBytes)
	reg.Gauge(obs.MRuntimeHeapGoalBytes)
	reg.Gauge(obs.MRuntimeGoroutines)
	reg.Counter(obs.MRuntimeMutexWaitMs)
	reg.Counter(obs.MRuntimeAllocBytes)
	reg.Counter(obs.MRuntimeGCCycles)
	return h
}

// Harvest takes one runtime/metrics snapshot and folds it into the
// registry. Not safe for concurrent use with itself; the TSDB's sample
// lock serializes it. Nil-safe.
func (h *Harvester) Harvest() {
	if h == nil {
		return
	}
	metrics.Read(h.samples)
	for i := range h.samples {
		s := &h.samples[i]
		switch s.Name {
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h.gcPause.fold(s.Value.Float64Histogram())
			}
		case rmSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h.schedLat.fold(s.Value.Float64Histogram())
			}
		case rmHeapLive:
			if s.Value.Kind() == metrics.KindUint64 {
				h.reg.Gauge(obs.MRuntimeHeapLiveBytes).Set(int64(s.Value.Uint64()))
			}
		case rmHeapGoal:
			if s.Value.Kind() == metrics.KindUint64 {
				h.reg.Gauge(obs.MRuntimeHeapGoalBytes).Set(int64(s.Value.Uint64()))
			}
		case rmGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				h.reg.Gauge(obs.MRuntimeGoroutines).Set(int64(s.Value.Uint64()))
			}
		case rmMutexWait:
			if s.Value.Kind() == metrics.KindFloat64 {
				v := s.Value.Float64()
				if h.primed && v > h.prevMutex {
					// Counters are integral; carry the fractional ms so
					// slow accumulation is not rounded away forever.
					h.mutexAcc += (v - h.prevMutex) * 1e3
					if add := int64(h.mutexAcc); add > 0 {
						h.reg.Counter(obs.MRuntimeMutexWaitMs).Add(add)
						h.mutexAcc -= float64(add)
					}
				}
				h.prevMutex = v
			}
		case rmAllocBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				v := s.Value.Uint64()
				if h.primed && v > h.prevAlloc {
					h.reg.Counter(obs.MRuntimeAllocBytes).Add(int64(v - h.prevAlloc))
				}
				h.prevAlloc = v
			}
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				v := s.Value.Uint64()
				if h.primed && v > h.prevGC {
					h.reg.Counter(obs.MRuntimeGCCycles).Add(int64(v - h.prevGC))
				}
				h.prevGC = v
			}
		}
	}
	h.primed = true
}
