package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lonviz/internal/obs"
)

// testRecorder builds a recorder over private obs plumbing so tests do
// not pollute the process-default registry/tracer/logger.
func testRecorder(t *testing.T, cfg RecorderConfig) (*Recorder, *obs.Registry) {
	t.Helper()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
		cfg.Registry = reg
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(16)
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NewLogger(io.Discard, 16)
	}
	r := NewRecorder(cfg)
	t.Cleanup(r.Close)
	return r, reg
}

// waitBundles polls until the recorder retains want bundles or the
// deadline passes.
func waitBundles(t *testing.T, r *Recorder, want int) []*Bundle {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		bs := r.Bundles()
		if len(bs) >= want {
			return bs
		}
		if time.Now().After(deadline) {
			t.Fatalf("recorder retained %d bundles, want %d", len(bs), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

var spinSink atomic.Uint64

// spin burns CPU until stop closes, under a class=testload pprof label,
// so the capture's CPU profile has labeled samples to record.
func spin(stop <-chan struct{}) {
	Do(context.Background(), func(context.Context) {
		var acc uint64
		for {
			select {
			case <-stop:
				spinSink.Add(acc)
				return
			default:
			}
			for i := 0; i < 1<<14; i++ {
				acc += uint64(i) * 2654435761
			}
		}
	}, KeyClass, "testload")
}

// TestCaptureBundleContents is the unit-level forensic contract: a
// capture taken while labeled work runs yields a bundle whose goroutine
// dump names the label, whose CPU profile references the label key, and
// whose auxiliary snapshots (heap, spans, events, tsdb window) are
// present and non-empty.
func TestCaptureBundleContents(t *testing.T) {
	SetLabelsEnabled(true)
	t.Cleanup(func() { SetLabelsEnabled(false) })

	reg := obs.NewRegistry()
	db := obs.NewTSDB(obs.TSDBConfig{Registry: reg})
	reg.Counter("test.counter").Add(7)
	db.Sample()

	// A parked goroutine under a known label: deterministically present in
	// the goroutine dump, labels inline at debug=1.
	release := make(chan struct{})
	parked := make(chan struct{})
	go Do(context.Background(), func(context.Context) {
		close(parked)
		<-release
	}, KeyClass, "parked_probe")
	<-parked
	defer close(release)

	// CPU-labeled spinners for the profile window. Sampling is
	// statistical, so retry the capture a few times before declaring the
	// label missing.
	stopSpin := make(chan struct{})
	var spinners sync.WaitGroup
	for i := 0; i < 2; i++ {
		spinners.Add(1)
		go func() {
			defer spinners.Done()
			spin(stopSpin)
		}()
	}
	defer func() {
		close(stopSpin)
		spinners.Wait()
	}()

	r, _ := testRecorder(t, RecorderConfig{Registry: reg, TSDB: db, CPUProfile: 250 * time.Millisecond})

	var b *Bundle
	for attempt := 0; attempt < 3; attempt++ {
		var err error
		b, err = r.Capture("alert:test-rule", "latency breach")
		if err != nil {
			t.Fatalf("Capture: %v", err)
		}
		if cpuProfileMentions(t, b.Files["cpu.pprof"], "testload") {
			break
		}
	}

	if b.Trigger != "alert:test-rule" || b.Note != "latency breach" {
		t.Errorf("bundle trigger/note = %q/%q", b.Trigger, b.Note)
	}
	for _, name := range []string{
		"cpu.pprof", "heap.pprof", "goroutines.txt", "goroutines-full.txt",
		"spans.json", "events.json", "tsdb.json",
	} {
		if len(b.Files[name]) == 0 {
			t.Errorf("bundle file %s missing or empty (errors.txt: %s)", name, b.Files["errors.txt"])
		}
	}
	if !bytes.Contains(b.Files["goroutines.txt"], []byte("parked_probe")) {
		t.Error("goroutines.txt does not carry the parked goroutine's class label")
	}
	if !cpuProfileMentions(t, b.Files["cpu.pprof"], "class") ||
		!cpuProfileMentions(t, b.Files["cpu.pprof"], "testload") {
		t.Error("cpu.pprof does not reference the class=testload label after 3 attempts")
	}
	var window map[string][]obs.Point
	if err := json.Unmarshal(b.Files["tsdb.json"], &window); err != nil {
		t.Fatalf("tsdb.json unparseable: %v", err)
	}
	if len(window["test.counter"]) == 0 {
		t.Errorf("tsdb.json window lacks the sampled series, got %d series", len(window))
	}
}

// cpuProfileMentions gunzips a pprof CPU profile and byte-searches its
// string table for s.
func cpuProfileMentions(t *testing.T, data []byte, s string) bool {
	t.Helper()
	if len(data) == 0 {
		return false
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("cpu.pprof is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip cpu.pprof: %v", err)
	}
	return bytes.Contains(raw, []byte(s))
}

// TestTriggerAsyncCooldown: alert triggers inside the cooldown are
// suppressed (and counted), a later trigger past the cooldown records
// again.
func TestTriggerAsyncCooldown(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	r, reg := testRecorder(t, RecorderConfig{
		CPUProfile: time.Millisecond,
		Cooldown:   time.Minute,
		Clock:      clock,
	})

	if !r.TriggerAsync("alert:r1", "first") {
		t.Fatal("first trigger suppressed")
	}
	waitBundles(t, r, 1)

	advance(30 * time.Second)
	if r.TriggerAsync("alert:r1", "inside cooldown") {
		t.Error("trigger inside the cooldown was not suppressed")
	}
	if v := reg.Counter(obs.MCaptureSuppressed).Value(); v != 1 {
		t.Errorf("capture.suppressed = %d, want 1", v)
	}

	advance(31 * time.Second)
	if !r.TriggerAsync("alert:r1", "past cooldown") {
		t.Error("trigger past the cooldown was suppressed")
	}
	bs := waitBundles(t, r, 2)
	if bs[0].ID == bs[1].ID {
		t.Errorf("duplicate bundle IDs: %s", bs[0].ID)
	}
	if v := reg.Counter(obs.Label(obs.MCaptureBundles, "trigger", "alert")).Value(); v != 2 {
		t.Errorf("capture.bundles{trigger=alert} = %d, want 2", v)
	}
}

// TestCaptureBusy: the manual path bypasses the cooldown but still
// refuses while another capture is in flight.
func TestCaptureBusy(t *testing.T) {
	r, _ := testRecorder(t, RecorderConfig{CPUProfile: 500 * time.Millisecond})
	if !r.TriggerAsync("alert:r1", "") {
		t.Fatal("trigger suppressed")
	}
	if _, err := r.Capture("manual", ""); !errors.Is(err, ErrCaptureBusy) {
		t.Fatalf("Capture during in-flight capture = %v, want ErrCaptureBusy", err)
	}
}

// TestCaptureRingEviction: past Capacity the oldest bundle is evicted,
// newest retained — repeated alerts cannot grow memory without bound.
func TestCaptureRingEviction(t *testing.T) {
	r, _ := testRecorder(t, RecorderConfig{CPUProfile: time.Millisecond, Capacity: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		b, err := r.Capture("manual", "")
		if err != nil {
			t.Fatalf("Capture %d: %v", i, err)
		}
		ids = append(ids, b.ID)
		if got := len(r.Bundles()); got > 2 {
			t.Fatalf("ring holds %d bundles after capture %d, capacity 2", got, i)
		}
	}
	bs := r.Bundles()
	if len(bs) != 2 || bs[0].ID != ids[2] || bs[1].ID != ids[3] {
		t.Fatalf("retained bundles = %v, want [%s %s]", bundleIDs(bs), ids[2], ids[3])
	}

	// An evicted bundle's download URL 404s rather than serving stale data.
	req := httptest.NewRequest(http.MethodGet, "/debug/capture/"+ids[0], nil)
	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusNotFound {
		t.Errorf("GET evicted bundle = %d, want 404", rw.Code)
	}
}

func bundleIDs(bs []*Bundle) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.ID
	}
	return out
}

// TestCloseInterruptsCapture (satellite: concurrent capture vs Close): a
// Close landing mid-capture stops the CPU profile early, keeps the
// partial bundle, returns promptly, and leaks no goroutines.
func TestCloseInterruptsCapture(t *testing.T) {
	before := runtime.NumGoroutine()
	r, _ := testRecorder(t, RecorderConfig{CPUProfile: 30 * time.Second})
	if !r.TriggerAsync("alert:slow", "") {
		t.Fatal("trigger suppressed")
	}
	time.Sleep(20 * time.Millisecond) // let the capture enter its profile window
	start := time.Now()
	r.Close()
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("Close took %v against a 30s profile window", d)
	}
	bs := r.Bundles()
	if len(bs) != 1 {
		t.Fatalf("partial bundle not retained: %d bundles", len(bs))
	}
	if len(bs[0].Files["goroutines.txt"]) == 0 {
		t.Error("interrupted bundle lacks a goroutine dump")
	}

	// Closed recorder refuses everything, idempotently.
	if r.TriggerAsync("alert:slow", "") {
		t.Error("TriggerAsync succeeded after Close")
	}
	if _, err := r.Capture("manual", ""); !errors.Is(err, ErrRecorderClosed) {
		t.Errorf("Capture after Close = %v, want ErrRecorderClosed", err)
	}
	r.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across capture+Close: %d -> %d", before, after)
	}
}

// TestConcurrentCaptureCloseStress races manual captures, async
// triggers, and Close from many goroutines — the invariant is simply no
// panic, no deadlock, and no goroutine left behind.
func TestConcurrentCaptureCloseStress(t *testing.T) {
	before := runtime.NumGoroutine()
	r, _ := testRecorder(t, RecorderConfig{CPUProfile: 5 * time.Millisecond, Capacity: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				_, _ = r.Capture("manual", "stress")
				r.TriggerAsync("alert:stress", "")
			}
		}()
	}
	time.Sleep(15 * time.Millisecond)
	r.Close()
	wg.Wait()
	if got := len(r.Bundles()); got > 2 {
		t.Errorf("ring exceeded capacity under stress: %d", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked under stress: %d -> %d", before, after)
	}
}

// TestRecorderHandler drives every /debug/capture route.
func TestRecorderHandler(t *testing.T) {
	r, _ := testRecorder(t, RecorderConfig{CPUProfile: time.Millisecond})
	h := r.Handler()

	get := func(path string) (*httptest.ResponseRecorder, []byte) {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, path, nil))
		return rw, rw.Body.Bytes()
	}

	// Empty index parses with an explicit empty list (not null).
	rw, body := get("/debug/capture")
	if rw.Code != http.StatusOK {
		t.Fatalf("GET index = %d", rw.Code)
	}
	var idx struct {
		Bundles []struct {
			ID      string         `json:"id"`
			Trigger string         `json:"trigger"`
			Note    string         `json:"note"`
			Files   map[string]int `json:"files"`
		} `json:"bundles"`
	}
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("empty index unparseable: %v\n%s", err, body)
	}
	if idx.Bundles == nil || len(idx.Bundles) != 0 {
		t.Fatalf("empty index = %+v, want []", idx.Bundles)
	}

	// POST records a bundle and echoes its metadata.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/debug/capture?note=drill", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("POST = %d\n%s", rw.Code, rw.Body.String())
	}
	var posted struct {
		ID    string         `json:"id"`
		Note  string         `json:"note"`
		Files map[string]int `json:"files"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &posted); err != nil {
		t.Fatalf("POST response unparseable: %v", err)
	}
	if posted.Note != "drill" || posted.Files["goroutines.txt"] == 0 {
		t.Errorf("POST response = %+v", posted)
	}

	// Index now lists it; per-bundle metadata and file download round-trip.
	_, body = get("/debug/capture")
	if err := json.Unmarshal(body, &idx); err != nil || len(idx.Bundles) != 1 {
		t.Fatalf("index after POST: err=%v bundles=%d", err, len(idx.Bundles))
	}
	if idx.Bundles[0].Trigger != "manual" {
		t.Errorf("trigger = %q, want manual", idx.Bundles[0].Trigger)
	}
	rw, _ = get("/debug/capture/" + posted.ID)
	if rw.Code != http.StatusOK {
		t.Errorf("GET bundle metadata = %d", rw.Code)
	}
	rw, body = get("/debug/capture/" + posted.ID + "/goroutines.txt")
	if rw.Code != http.StatusOK || len(body) == 0 {
		t.Errorf("GET goroutines.txt = %d, %d bytes", rw.Code, len(body))
	}
	if ct := rw.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("goroutines.txt content-type = %q", ct)
	}

	// 404s: unknown bundle, unknown file.
	if rw, _ = get("/debug/capture/nope"); rw.Code != http.StatusNotFound {
		t.Errorf("GET unknown bundle = %d, want 404", rw.Code)
	}
	if rw, _ = get("/debug/capture/" + posted.ID + "/nope.bin"); rw.Code != http.StatusNotFound {
		t.Errorf("GET unknown file = %d, want 404", rw.Code)
	}

	// 503 after Close.
	r.Close()
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/debug/capture", nil))
	if rw.Code != http.StatusServiceUnavailable {
		t.Errorf("POST after Close = %d, want 503", rw.Code)
	}
}

// TestRecorderOffPathZeroGoroutines pins the acceptance contract: with
// -metrics-addr unset nothing profiles — construction starts no
// goroutines, and the nil recorder (what the disabled stack holds) is
// inert on every method.
func TestRecorderOffPathZeroGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	r, _ := testRecorder(t, RecorderConfig{})
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("NewRecorder started %d goroutines, want 0", after-before)
	}
	_ = r

	var nilRec *Recorder
	if nilRec.TriggerAsync("alert:x", "") {
		t.Error("nil TriggerAsync returned true")
	}
	if _, err := nilRec.Capture("manual", ""); !errors.Is(err, ErrRecorderClosed) {
		t.Errorf("nil Capture = %v, want ErrRecorderClosed", err)
	}
	if nilRec.Bundles() != nil {
		t.Error("nil Bundles returned non-nil")
	}
	nilRec.Close()
}
