package prof

import (
	"runtime"
	"testing"
	"time"
)

// TestSummaryCollector: a short window with deliberate allocator and GC
// activity yields a summary with a positive duration, a nonzero alloc
// rate, the forced GC cycles, and a sane goroutine peak.
func TestSummaryCollector(t *testing.T) {
	c := StartSummary(5 * time.Millisecond)
	sink := make([][]byte, 0, 128)
	for i := 0; i < 128; i++ {
		sink = append(sink, make([]byte, 64*1024))
		if i%32 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	_ = sink
	runtime.GC()
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	s := c.Stop()

	if s.DurationSec <= 0 {
		t.Errorf("DurationSec = %v, want > 0", s.DurationSec)
	}
	if s.AllocRateMBs <= 0 {
		t.Errorf("AllocRateMBs = %v, want > 0", s.AllocRateMBs)
	}
	if s.GCCycles < 2 {
		t.Errorf("GCCycles = %d after two forced GCs, want >= 2", s.GCCycles)
	}
	if s.PeakGoroutines < 1 {
		t.Errorf("PeakGoroutines = %d, want >= 1", s.PeakGoroutines)
	}
	if s.GCPauseP99Ms < 0 {
		t.Errorf("GCPauseP99Ms = %v, want >= 0", s.GCPauseP99Ms)
	}
}

// TestSummaryCollectorStopsGoroutine: Stop must terminate the sampling
// goroutine.
func TestSummaryCollectorStopsGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	c := StartSummary(time.Millisecond)
	c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("sampling goroutine leaked: %d -> %d", before, after)
	}
}

// TestSummaryNilStop: the nil collector (benchmarks with collection off)
// is inert.
func TestSummaryNilStop(t *testing.T) {
	var c *SummaryCollector
	if s := c.Stop(); s != (Summary{}) {
		t.Errorf("nil Stop = %+v, want zero", s)
	}
}
