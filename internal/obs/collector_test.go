package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startPeer serves a tracer's export like a daemon's /debug/traces.
func startPeer(t *testing.T, tr *Tracer) string {
	t.Helper()
	srv := httptest.NewServer(NewMux(NewRegistry(), tr))
	t.Cleanup(srv.Close)
	return srv.URL
}

func TestCollectorMergesLocalAndPeer(t *testing.T) {
	// "Client" process: root span.
	local := NewTracer(16)
	ctx, root := local.StartSpan(context.Background(), "client.op")

	// "Depot" process: serve span remote-parented under the client's.
	remote := NewTracer(16)
	tc := TraceContext{TraceID: root.TraceID, SpanID: root.ID}
	_, serve := remote.StartSpan(ContextWithRemote(context.Background(), tc), SpanIBPServe)
	serve.SetAttr("op", "LOAD")
	serve.Finish()
	root.Finish()
	_ = ctx

	col := &Collector{Local: local, Peers: []string{startPeer(t, remote)}}
	spans, errs := col.Collect(context.Background(), root.TraceID)
	if len(errs) != 0 {
		t.Fatalf("collect errs: %v", errs)
	}
	if len(spans) != 2 {
		t.Fatalf("collected %d spans, want 2: %+v", len(spans), spans)
	}

	trees := BuildTrees(spans)
	if len(trees) != 1 || trees[0].TraceID != root.TraceID {
		t.Fatalf("trees = %+v, want one tree for %x", trees, root.TraceID)
	}
	var sb strings.Builder
	trees[0].Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "client.op") || !strings.Contains(out, SpanIBPServe) {
		t.Errorf("render missing spans:\n%s", out)
	}
	// The depot half is attributed to its peer and indented under the root.
	if !strings.Contains(out, "@http://") {
		t.Errorf("render missing peer source tag:\n%s", out)
	}
	if !strings.Contains(out, "{op=LOAD}") {
		t.Errorf("render missing attrs:\n%s", out)
	}
}

func TestCollectorSkipsDeadPeer(t *testing.T) {
	local := NewTracer(16)
	_, root := local.StartSpan(context.Background(), "client.op")
	root.Finish()

	col := &Collector{
		Local: local,
		Peers: []string{"127.0.0.1:1"}, // nothing listens here
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	spans, errs := col.Collect(ctx, root.TraceID)
	if len(errs) != 1 {
		t.Errorf("dead peer produced %d errors, want 1", len(errs))
	}
	if len(spans) != 1 {
		t.Errorf("local spans still collected = %d, want 1", len(spans))
	}
}

func TestBuildTreesDedupsAndGroups(t *testing.T) {
	now := time.Now()
	spans := []SpanRecord{
		{ID: 1, TraceID: 1, Name: "a", Start: now},
		{ID: 1, TraceID: 1, Name: "a", Start: now}, // duplicate pull
		{ID: 2, TraceID: 1, ParentID: 1, Name: "b", Start: now.Add(time.Millisecond)},
		{ID: 3, TraceID: 9, Name: "other", Start: now.Add(2 * time.Millisecond)},
		{ID: 4, TraceID: 0, Name: "untraced"}, // dropped
	}
	trees := BuildTrees(spans)
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want 2", len(trees))
	}
	if trees[0].TraceID != 1 || len(trees[0].Spans) != 2 {
		t.Errorf("first tree = %x with %d spans, want trace 1 with 2", trees[0].TraceID, len(trees[0].Spans))
	}
	if trees[1].TraceID != 9 {
		t.Errorf("second tree = %x, want 9", trees[1].TraceID)
	}
}

func TestRenderOrphanSpansSurface(t *testing.T) {
	// A span whose parent lives on an unreachable peer must still render.
	now := time.Now()
	tt := &TraceTree{TraceID: 5, Spans: []SpanRecord{
		{ID: 7, TraceID: 5, ParentID: 99, Name: "orphan.serve", Start: now, DurMs: 1},
	}}
	var sb strings.Builder
	tt.Render(&sb)
	if !strings.Contains(sb.String(), "orphan.serve") {
		t.Errorf("orphan span vanished from render:\n%s", sb.String())
	}
}

func TestTraceTreeDuration(t *testing.T) {
	now := time.Now()
	tt := &TraceTree{TraceID: 1, Spans: []SpanRecord{
		{ID: 1, TraceID: 1, Start: now, DurMs: 10},
		{ID: 2, TraceID: 1, Start: now.Add(5 * time.Millisecond), DurMs: 10},
	}}
	if d := tt.Duration(); d != 15*time.Millisecond {
		t.Errorf("duration = %v, want 15ms", d)
	}
	if d := (&TraceTree{}).Duration(); d != 0 {
		t.Errorf("empty tree duration = %v", d)
	}
}
