package obs

import (
	"context"
	"sync"
	"testing"
)

// TestQuantileEmpty: an unobserved histogram reports 0 for every
// quantile, not NaN or a stale max.
func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P50 != 0 || snap.P99 != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
}

// TestQuantileSingleSample: with one observation every quantile lands in
// that observation's bucket.
func TestQuantileSingleSample(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	h.Observe(7)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 1 || got > 10 {
			t.Errorf("single-sample Quantile(%g) = %g, want within bucket (1,10]", q, got)
		}
	}
}

// TestQuantileAllOverflow: every observation above the top bound lands in
// the overflow bucket, whose quantiles saturate at the max seen rather
// than inventing an interpolated bound.
func TestQuantileAllOverflow(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, v := range []float64{50, 75, 200} {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.99} {
		if got := h.Quantile(q); got != 200 {
			t.Errorf("all-overflow Quantile(%g) = %g, want max seen 200", q, got)
		}
	}
}

// TestTracerConcurrentEviction hammers one small-ring tracer with
// concurrent span creation/finish and readers; run under -race this is
// the eviction data-race guard, and afterwards the ring must hold
// exactly its capacity of the newest spans.
func TestTracerConcurrentEviction(t *testing.T) {
	const ringCap = 8
	tr := NewTracer(ringCap)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, parent := tr.StartSpan(context.Background(), "parent")
				_, child := tr.StartSpan(ctx, "child")
				child.SetAttr("i", "x")
				child.Finish()
				parent.Finish()
			}
		}()
	}
	// Concurrent readers exercise Completed/Export against the writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tr.Completed()
				_ = tr.Export(0)
			}
		}()
	}
	wg.Wait()
	done := tr.Completed()
	if len(done) != ringCap {
		t.Fatalf("ring holds %d spans, want capacity %d", len(done), ringCap)
	}
	seen := make(map[uint64]bool, len(done))
	for _, s := range done {
		if s == nil {
			t.Fatal("nil span in ring")
		}
		if seen[s.ID] {
			t.Errorf("duplicate span %x in ring", s.ID)
		}
		seen[s.ID] = true
	}
}
