// Package obs is the unified observability layer of the lonviz stack:
// stdlib-only metrics and request-scoped tracing for every network-facing
// component, exported as expvar-compatible JSON over an opt-in HTTP
// endpoint alongside net/http/pprof.
//
// # Contract
//
// Three metric primitives cover the stack's needs:
//
//   - Counter: a monotonically increasing atomic int64 (operations,
//     bytes, errors).
//   - Gauge: an atomic int64 snapshot value that can move both ways
//     (queue depths, open circuits).
//   - Histogram: a fixed-bucket latency/size distribution with count,
//     sum, min, max and interpolated p50/p95/p99. Buckets are chosen at
//     construction and never reallocate, so Observe is a handful of
//     atomic adds — safe on hot paths.
//
// Metrics live in a Registry keyed by name. Names are dotted lowercase
// with the unit as suffix ("ibp.op.ms", "lors.download.bytes"); low-
// cardinality labels are folded into the name with Label, rendering as
// "name{key=value}". Registry accessors are get-or-create, so call sites
// need no registration ceremony: the instrumented packages (ibp, lors,
// dvs, lbone, agent, steward) record into obs.Default() unless a caller
// injects its own registry. Component-level snapshot stats that already
// exist as structs (agent.Stats, steward.Stats, ibp.Depot.Stat) are
// bridged with RegisterSnapshot, which polls a closure at scrape time.
//
// Tracing is a lightweight span API: StartSpan derives a child span from
// whatever span the context carries, End completes it, and the Tracer
// retains a bounded ring of recently completed spans with parent/child
// links intact for the /debug/traces endpoint. It is request-scoped
// observability, not a distributed tracer: span IDs never cross the
// wire.
//
// # Exposure
//
// NewMux builds the HTTP surface: /metrics and /debug/vars serve the
// registry as a flat JSON object (the expvar shape), /debug/pprof/* is
// net/http/pprof, and /debug/traces dumps the recent span ring. Serve
// binds it to an address; every daemon exposes it behind a -metrics-addr
// flag. See docs/OBSERVABILITY.md for the metric catalog and worked
// diagnosis examples.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; methods are safe for concurrent use and on a nil receiver (a
// nil counter records nothing), so optional instrumentation needs no
// guards.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a fresh counter (for struct fields; registry users
// call Registry.Counter instead).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move in both directions. Safe
// for concurrent use and on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a fresh gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBucketsMs is the default histogram layout for operation
// latencies in milliseconds: roughly exponential from 50µs (cache hits
// in Figure 12 live near 1e-4 s) up to 30 s (a WAN operation gone
// pathological).
var LatencyBucketsMs = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50,
	100, 250, 500, 1000, 2500, 5000, 10000, 30000,
}

// SizeBucketsBytes is the default layout for payload sizes: powers of
// four from 1 KiB to 64 MiB.
var SizeBucketsBytes = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v <= bounds[i]; one extra overflow bucket counts the rest. Observe is
// lock-free (atomic adds only). Quantiles are estimated by linear
// interpolation inside the containing bucket, which is exact enough to
// rank depots and spot order-of-magnitude regressions — the use cases
// this layer exists for. Safe on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
	minSet atomic.Bool

	// Exemplar linkage: the trace ID of the most recent sample that
	// landed in the top (highest yet seen) bucket, so a bad tail is one
	// /debug/traces lookup from its merged trace. Two independent atomics
	// — a racing pair of top-bucket samples may interleave, which is fine
	// for a diagnostic pointer.
	exemplarIdx   atomic.Int64 // highest bucket index observed, +1 (0 = none)
	exemplarTrace atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// Empty bounds default to LatencyBucketsMs.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBucketsMs
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample. NaN is dropped.
func (h *Histogram) Observe(v float64) {
	h.ObserveTrace(v, 0)
}

// ObserveTrace records one sample like Observe and, when the sample
// lands in the top bucket — the highest bucket index this histogram has
// seen — retains traceID as the histogram's exemplar. The exemplar is
// exported in snapshots and shown by lftop's latency panes, so the trace
// behind a bad p99 is one -trace lookup away. A zero traceID records the
// sample without touching the exemplar.
func (h *Histogram) ObserveTrace(v float64, traceID uint64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
	updateMin(&h.min, &h.minSet, v)
	updateMax(&h.max, v)
	if traceID != 0 && int64(idx)+1 >= h.exemplarIdx.Load() {
		h.exemplarIdx.Store(int64(idx) + 1)
		h.exemplarTrace.Store(traceID)
	}
}

// Exemplar returns the trace ID of the most recent top-bucket sample
// (0 when no traced sample has been observed).
func (h *Histogram) Exemplar() uint64 {
	if h == nil {
		return 0
	}
	return h.exemplarTrace.Load()
}

// AddSample records n observations of value v in one call — the bulk
// path the runtime-metrics harvester uses to fold Float64Histogram
// bucket deltas into the registry without synthesizing n Observes. NaN
// values and non-positive n are dropped.
func (h *Histogram) AddSample(v float64, n int64) {
	if h == nil || n <= 0 || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(n)
	h.count.Add(n)
	addFloat(&h.sum, v*float64(n))
	updateMin(&h.min, &h.minSet, v)
	updateMax(&h.max, v)
}

func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

func updateMin(a *atomic.Uint64, set *atomic.Bool, v float64) {
	for {
		if !set.Load() {
			// First observation: try to claim. A racing first observation
			// is resolved by the CAS loop below on the next pass.
			if set.CompareAndSwap(false, true) {
				a.Store(math.Float64bits(v))
				return
			}
			continue
		}
		old := a.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func updateMax(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if h := math.Float64frombits(old); old != 0 && h >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time view of a histogram, shaped for
// JSON export.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets maps each upper bound (and "+Inf") to its count. Only
	// non-empty buckets are included, to keep scrape output readable.
	Buckets map[string]int64 `json:"buckets,omitempty"`
	// ExemplarTrace is the hex trace ID of the most recent sample that
	// landed in the histogram's top bucket — the trace to pull when the
	// tail looks wrong. Omitted when no traced sample has been observed.
	ExemplarTrace string `json:"exemplar_trace,omitempty"`
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (0 < q < 1) by linear
// interpolation within the containing bucket; the overflow bucket
// reports the largest bound (quantiles above the layout saturate). An
// empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i >= len(h.bounds) {
				// Overflow bucket has no upper edge; clamp at the max seen.
				return math.Float64frombits(h.max.Load())
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return math.Float64frombits(h.max.Load())
}

// Snapshot returns the JSON-ready view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sum.Load()),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if ex := h.exemplarTrace.Load(); ex != 0 {
		s.ExemplarTrace = fmt.Sprintf("%016x", ex)
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
		s.Buckets = make(map[string]int64)
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue
			}
			key := "+Inf"
			if i < len(h.bounds) {
				key = trimFloat(h.bounds[i])
			}
			s.Buckets[key] = n
		}
	}
	return s
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f), "0"), ".")
}

// Label folds low-cardinality label pairs into a metric name, rendering
// "name{k1=v1,k2=v2}" with keys sorted so the same label set always maps
// to the same metric. It is the naming convention of this package, not a
// dimensional model: use it for bounded sets (operation verbs, depot
// addresses of a deployment), never for unbounded values.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.Grow(len(name) + 2 + 16*len(pairs))
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// BaseName strips the {labels} suffix Label added, returning the metric
// family name. Documentation tooling (scripts/docscheck.sh) audits
// families, not label instances.
func BaseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WithLabel injects one more label pair into a metric name that may
// already carry labels, keeping the canonical sorted-key rendering:
// WithLabel("ibp.op.ms{op=load}", "node", "h1:99") is
// "ibp.op.ms{node=h1:99,op=load}". The fleet scraper uses it to
// namespace scraped per-node series into the cluster TSDB.
func WithLabel(name, key, value string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return Label(name, key, value)
	}
	kv := []string{key, value}
	for _, pair := range strings.Split(name[i+1:len(name)-1], ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		kv = append(kv, k, v)
	}
	return Label(name[:i], kv...)
}
