package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic sampling.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.UnixMilli(1_700_000_000_000)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestTSDBScalarRingWraparound(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeClock()
	db := NewTSDB(TSDBConfig{
		Registry: reg,
		Tiers:    []Tier{{Step: time.Second, Slots: 4}},
		Clock:    clock.Now,
	})
	ctr := reg.Counter("test.wrap")
	// 10 samples into a 4-slot ring: only the newest 4 survive.
	for i := 0; i < 10; i++ {
		ctr.Inc()
		db.Sample()
		clock.Advance(time.Second)
	}
	pts := db.Points("test.wrap", clock.Now().Add(-time.Hour))
	if len(pts) != 4 {
		t.Fatalf("got %d points after wraparound, want 4", len(pts))
	}
	for i, want := range []float64{7, 8, 9, 10} {
		if pts[i].V != want {
			t.Errorf("point %d = %v, want %v", i, pts[i].V, want)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Errorf("points not oldest-first: t[%d]=%d t[%d]=%d", i-1, pts[i-1].T, i, pts[i].T)
		}
	}
}

func TestTSDBTieredDownsampling(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeClock()
	db := NewTSDB(TSDBConfig{
		Registry: reg,
		Tiers:    []Tier{{Step: time.Second, Slots: 5}, {Step: 10 * time.Second, Slots: 6}},
		Clock:    clock.Now,
	})
	g := reg.Gauge("test.tiered")
	for i := 0; i < 35; i++ {
		g.Set(int64(i))
		db.Sample()
		clock.Advance(time.Second)
	}
	// A query inside the finest tier's 5 s span uses full resolution.
	fine := db.Points("test.tiered", clock.Now().Add(-4*time.Second))
	if len(fine) < 3 {
		t.Fatalf("fine query got %d points, want >=3", len(fine))
	}
	for i := 1; i < len(fine); i++ {
		if step := fine[i].T - fine[i-1].T; step != 1000 {
			t.Errorf("fine tier step %dms, want 1000", step)
		}
	}
	// A query past the finest tier's span falls back to the 10 s tier:
	// decimated, not averaged, and still covering the old samples.
	coarse := db.Points("test.tiered", clock.Now().Add(-30*time.Second))
	if len(coarse) < 3 {
		t.Fatalf("coarse query got %d points, want >=3", len(coarse))
	}
	for i := 1; i < len(coarse); i++ {
		if step := coarse[i].T - coarse[i-1].T; step < 9000 {
			t.Errorf("coarse tier step %dms, want >=9000 (decimated)", step)
		}
	}
}

func TestTSDBRateCounterReset(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeClock()
	db := NewTSDB(TSDBConfig{
		Registry: reg,
		Tiers:    []Tier{{Step: time.Second, Slots: 16}},
		Clock:    clock.Now,
	})
	// Gauges sample arbitrary values, letting us shape a cumulative series
	// with a mid-window counter reset: 0, 10, 3, 5.
	g := reg.Gauge("test.reset")
	for _, v := range []int64{0, 10, 3, 5} {
		g.Set(v)
		db.Sample()
		clock.Advance(time.Second)
	}
	// Increase = (10-0) + 3 (post-reset value) + (5-3) = 15 over 3 s.
	inc, n := db.Delta("test.reset", 10*time.Second)
	if n != 4 {
		t.Fatalf("Delta saw %d samples, want 4", n)
	}
	if inc != 15 {
		t.Errorf("reset-aware Delta = %v, want 15", inc)
	}
	rate, ok := db.Rate("test.reset", 10*time.Second)
	if !ok {
		t.Fatal("Rate not ok")
	}
	if want := 15.0 / 3.0; rate != want {
		t.Errorf("Rate = %v, want %v", rate, want)
	}
}

func TestTSDBQuantileOverWindow(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeClock()
	db := NewTSDB(TSDBConfig{
		Registry: reg,
		Tiers:    []Tier{{Step: time.Second, Slots: 300}},
		Clock:    clock.Now,
	})
	h := reg.Histogram("test.lat", 1, 5, 25, 100, 500)
	// Old traffic: fast. Falls out of the query window.
	for i := 0; i < 100; i++ {
		h.Observe(2)
	}
	db.Sample()
	clock.Advance(60 * time.Second)
	db.Sample() // window anchor carrying the old cumulative counts
	clock.Advance(time.Second)
	// Recent traffic: slow. Only these observations are inside the window.
	for i := 0; i < 50; i++ {
		h.Observe(200)
	}
	db.Sample()

	q, n := db.QuantileOver("test.lat", 0.5, 10*time.Second)
	if n != 50 {
		t.Fatalf("window held %d observations, want 50 (old traffic leaked in)", n)
	}
	if q <= 100 || q > 500 {
		t.Errorf("windowed p50 = %v, want within (100, 500] (the slow bucket)", q)
	}
	// The all-time quantile still sees the fast majority — proving the
	// window isolated the regression.
	if all := h.Quantile(0.5); all > 100 {
		t.Errorf("all-time p50 = %v, want <=100", all)
	}
	// An empty window reports zero observations, not a stale value.
	clock.Advance(time.Hour)
	if _, n := db.QuantileOver("test.lat", 0.5, 10*time.Second); n != 0 {
		t.Errorf("empty window reported %d observations, want 0", n)
	}
}

func TestTSDBHistogramResetFallsBackToNewest(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeClock()
	db := NewTSDB(TSDBConfig{
		Registry: reg,
		Tiers:    []Tier{{Step: time.Second, Slots: 16}},
		Clock:    clock.Now,
	})
	h := reg.Histogram("test.reset.hist", 1, 10, 100)
	for i := 0; i < 40; i++ {
		h.Observe(5)
	}
	db.Sample()
	clock.Advance(time.Second)
	// Simulate a restart: a fresh histogram under the same name with fewer
	// cumulative observations.
	reg.mu.Lock()
	delete(reg.metrics, "test.reset.hist")
	reg.mu.Unlock()
	h2 := reg.Histogram("test.reset.hist", 1, 10, 100)
	for i := 0; i < 10; i++ {
		h2.Observe(50)
	}
	db.Sample()
	q, n := db.QuantileOver("test.reset.hist", 0.5, 10*time.Second)
	if n != 10 {
		t.Fatalf("reset window held %d observations, want 10 (newest sample alone)", n)
	}
	if q <= 10 {
		t.Errorf("post-reset p50 = %v, want in the slow bucket (>10)", q)
	}
}

func TestTSDBHandler(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeClock()
	db := NewTSDB(TSDBConfig{
		Registry: reg,
		Tiers:    []Tier{{Step: time.Second, Slots: 8}},
		Clock:    clock.Now,
	})
	ctr := reg.Counter("test.handler")
	for i := 0; i < 4; i++ {
		ctr.Add(3)
		db.Sample()
		clock.Advance(time.Second)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	var idx struct {
		Tiers []struct {
			StepMs int64 `json:"step_ms"`
		} `json:"tiers"`
		Series []SeriesInfo `json:"series"`
	}
	getJSON(t, srv.URL+"/", &idx)
	if len(idx.Tiers) != 1 || idx.Tiers[0].StepMs != 1000 {
		t.Errorf("index tiers = %+v", idx.Tiers)
	}
	if len(idx.Series) != 1 || idx.Series[0].Name != "test.handler" {
		t.Fatalf("index series = %+v", idx.Series)
	}

	var resp struct {
		Name   string  `json:"name"`
		Points []Point `json:"points"`
	}
	getJSON(t, srv.URL+"/?name=test.handler&since=1m", &resp)
	if len(resp.Points) != 4 {
		t.Fatalf("raw query got %d points, want 4", len(resp.Points))
	}
	var rate struct {
		Points []Point `json:"points"`
	}
	getJSON(t, srv.URL+"/?name=test.handler&since=1m&agg=rate", &rate)
	if len(rate.Points) != 3 {
		t.Fatalf("rate query got %d points, want 3", len(rate.Points))
	}
	if rate.Points[0].V != 3 {
		t.Errorf("rate = %v, want 3/s", rate.Points[0].V)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func TestTSDBConcurrentSampleAndQuery(t *testing.T) {
	reg := NewRegistry()
	db := NewTSDB(TSDBConfig{
		Registry: reg,
		Tiers:    []Tier{{Step: time.Millisecond, Slots: 64}},
	})
	ctr := reg.Counter("test.conc")
	h := reg.Histogram("test.conc.ms", 1, 10, 100)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctr.Inc()
				h.Observe(float64(ctr.Value() % 100))
				db.Sample()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			since := time.Now().Add(-time.Minute)
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.Points("test.conc", since)
				db.Rate("test.conc", time.Minute)
				db.QuantileOver("test.conc.ms", 0.99, time.Minute)
				db.Series()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestTSDBOffPathAllocs pins the off path: with -metrics-addr unset no
// TSDB exists, and the nil receiver must stay zero-alloc so instrumented
// call sites cost nothing in un-instrumented processes.
func TestTSDBOffPathAllocs(t *testing.T) {
	var db *TSDB
	if n := testing.AllocsPerRun(100, func() {
		db.Sample()
		db.Points("x", time.Time{})
		db.Rate("x", time.Minute)
		db.QuantileOver("x", 0.99, time.Minute)
		if db.Names() != nil {
			t.Fatal("nil TSDB returned names")
		}
	}); n != 0 {
		t.Errorf("nil TSDB path allocates %v per run, want 0", n)
	}
	if DepotLatencyBias(nil, time.Minute) != nil {
		t.Error("DepotLatencyBias(nil) should be nil so lors skips scoring entirely")
	}
}

// TestTSDBRunStops proves Run exits promptly when stop closes and leaves
// no goroutine behind.
func TestTSDBRunStops(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewRegistry()
	db := NewTSDB(TSDBConfig{Registry: reg, Tiers: []Tier{{Step: time.Millisecond, Slots: 8}}})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		db.Run(stop, time.Millisecond)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop")
	}
	// Allow the runtime a beat to retire the goroutine.
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d -> %d", before, after)
	}
}
