package obs

// Trace-context propagation: the cross-process half of the tracing layer.
//
// A trace context is the pair (trace ID, span ID) of the caller's active
// span. It crosses process boundaries in two encodings:
//
//   - line protocols (IBP, DVS, the server-agent RENDER verb) append one
//     optional trailing token "trace=<traceid>/<spanid>" (both hex) to the
//     request line. Servers that predate the token ignore unknown trailing
//     fields only if they were built with this package, so the token is
//     emitted ONLY when propagation is enabled (see below); a request
//     without the token always parses, which keeps pre-propagation clients
//     working against new servers.
//   - HTTP protocols (L-Bone, the obs endpoints themselves) carry the same
//     "<traceid>/<spanid>" value in the X-Lonviz-Trace header.
//
// The receiving side turns the pair into a remote parent: StartSpan under
// ContextWithRemote records the caller's trace ID and parents the new span
// under the caller's span ID, so a collector that fetches both rings can
// reassemble one end-to-end tree.
//
// Propagation is off by default and enabled process-wide by Serve (the
// -metrics-addr path) or explicitly with SetPropagation. With propagation
// off the emit helpers return "" without allocating, so an untraced
// deployment pays nothing on the wire or in the allocator —
// TestTraceTokenDisabledAllocs pins that down.

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
)

// TraceHeader is the HTTP header carrying "<traceid>/<spanid>" (hex).
const TraceHeader = "X-Lonviz-Trace"

// tokenPrefix marks the optional trailing field on line protocols.
const tokenPrefix = "trace="

var propagationOn atomic.Bool

// SetPropagation turns cross-process trace propagation on or off
// process-wide. Serve enables it; tests flip it directly.
func SetPropagation(on bool) { propagationOn.Store(on) }

// PropagationEnabled reports whether trace contexts are being emitted on
// the wire.
func PropagationEnabled() bool { return propagationOn.Load() }

// TraceContext is a caller's identity as it crosses a process boundary.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 && tc.SpanID != 0 }

// String renders the wire value "<traceid>/<spanid>" in hex (without the
// token prefix or header name).
func (tc TraceContext) String() string {
	return strconv.FormatUint(tc.TraceID, 16) + "/" + strconv.FormatUint(tc.SpanID, 16)
}

// parseTraceValue parses "<traceid>/<spanid>" (hex).
func parseTraceValue(v string) (TraceContext, bool) {
	slash := strings.IndexByte(v, '/')
	if slash <= 0 || slash == len(v)-1 {
		return TraceContext{}, false
	}
	tid, err1 := strconv.ParseUint(v[:slash], 16, 64)
	sid, err2 := strconv.ParseUint(v[slash+1:], 16, 64)
	if err1 != nil || err2 != nil || tid == 0 || sid == 0 {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: tid, SpanID: sid}, true
}

// ContextFrom extracts the active span's trace context from ctx. ok is
// false when ctx carries no span.
func ContextFrom(ctx context.Context) (TraceContext, bool) {
	s := SpanFromContext(ctx)
	if s == nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: s.TraceID, SpanID: s.ID}, true
}

// TraceToken returns the request-line token "trace=<traceid>/<spanid>" for
// the span ctx carries, or "" when propagation is disabled or there is no
// active span. The "" path performs no allocation, so instrumented clients
// may call it unconditionally on hot paths.
func TraceToken(ctx context.Context) string {
	if !propagationOn.Load() {
		return ""
	}
	tc, ok := ContextFrom(ctx)
	if !ok {
		return ""
	}
	return tokenPrefix + tc.String()
}

// ParseTraceToken parses one request-line field. ok is true only for a
// well-formed "trace=<hex>/<hex>" token; any other field (including a
// malformed token, which is treated as opaque trailing data) returns false.
func ParseTraceToken(field string) (TraceContext, bool) {
	if !strings.HasPrefix(field, tokenPrefix) {
		return TraceContext{}, false
	}
	return parseTraceValue(field[len(tokenPrefix):])
}

// StripTraceToken removes a trailing trace token from parsed request
// fields, returning the remaining fields and the context (if present).
// Line-protocol servers call it once per request before verb dispatch so
// argument-count checks are unaffected by the optional token.
func StripTraceToken(fields []string) ([]string, TraceContext, bool) {
	if len(fields) == 0 {
		return fields, TraceContext{}, false
	}
	tc, ok := ParseTraceToken(fields[len(fields)-1])
	if !ok {
		return fields, TraceContext{}, false
	}
	return fields[:len(fields)-1], tc, true
}

// InjectHTTP stamps the active span's trace context onto an outgoing HTTP
// header. No-op when propagation is disabled or ctx carries no span.
func InjectHTTP(ctx context.Context, h http.Header) {
	if !propagationOn.Load() {
		return
	}
	tc, ok := ContextFrom(ctx)
	if !ok {
		return
	}
	h.Set(TraceHeader, tc.String())
}

// ExtractHTTP reads a trace context from an incoming HTTP request's
// headers. ok is false when the header is absent or malformed.
func ExtractHTTP(h http.Header) (TraceContext, bool) {
	v := h.Get(TraceHeader)
	if v == "" {
		return TraceContext{}, false
	}
	return parseTraceValue(v)
}

type remoteCtxKey struct{}

// ContextWithRemote returns a context under which StartSpan parents the
// new span to the remote caller described by tc: same trace ID, parent
// span ID, Remote flag set. Server loops use it to root their per-request
// span under the client's span.
func ContextWithRemote(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, tc)
}

// remoteFromContext returns the remote parent ctx carries, if any.
func remoteFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(remoteCtxKey{}).(TraceContext)
	return tc, ok
}
