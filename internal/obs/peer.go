package obs

// PeerClient: the one way this process fetches observability documents
// from another process's -metrics-addr endpoint.
//
// Every cross-process observability pull — the Collector's trace merge,
// the fleet scraper's /metrics and /debug/alerts sweeps — shares the
// same failure modes: a peer that is down, a peer that is slow, and a
// peer that answers garbage. PeerClient centralizes the defenses (a
// bounded per-request deadline layered on the caller's context, a body
// size limit, address normalization) so callers fan out freely without
// one hung peer stalling the rest.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// DefaultPeerTimeout bounds one peer request when PeerClient.Timeout is
// unset. It is deliberately short: observability pulls are advisory, and
// a peer that cannot answer in two seconds is better reported down than
// waited out.
const DefaultPeerTimeout = 2 * time.Second

// defaultPeerBodyLimit caps how much of a peer response is read (8 MiB —
// generous for any metrics or trace export this stack produces).
const defaultPeerBodyLimit = 8 << 20

// PeerClient fetches JSON documents from peer observability endpoints
// with a bounded per-request deadline. The zero value is usable.
type PeerClient struct {
	// HTTP is the underlying client; nil means a shared default with no
	// client-level timeout (the per-request deadline below bounds calls).
	HTTP *http.Client
	// Timeout bounds each request, layered on (never extending) the
	// caller's context. Zero means DefaultPeerTimeout.
	Timeout time.Duration
	// MaxBody caps the response size read (default 8 MiB).
	MaxBody int64
}

// PeerBaseURL normalizes a peer address ("host:port" or a full URL) into
// a base URL with no trailing slash.
func PeerBaseURL(peer string) string {
	base := peer
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimSuffix(base, "/")
}

func (p *PeerClient) httpClient() *http.Client {
	if p != nil && p.HTTP != nil {
		return p.HTTP
	}
	return http.DefaultClient
}

func (p *PeerClient) timeout() time.Duration {
	if p != nil && p.Timeout > 0 {
		return p.Timeout
	}
	return DefaultPeerTimeout
}

func (p *PeerClient) maxBody() int64 {
	if p != nil && p.MaxBody > 0 {
		return p.MaxBody
	}
	return defaultPeerBodyLimit
}

// Get fetches peer+path (with optional query) under the per-request
// deadline and returns the status code and body. A transport failure
// returns status 0. Non-2xx responses are returned, not errors: /healthz
// answering 503 is a successful fetch of a degraded peer.
func (p *PeerClient) Get(ctx context.Context, peer, path string, query url.Values) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout())
	defer cancel()
	u := PeerBaseURL(peer) + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := p.httpClient().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, p.maxBody()))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// GetJSON fetches peer+path and decodes the body into out. Non-200
// statuses and undecodable bodies are errors.
func (p *PeerClient) GetJSON(ctx context.Context, peer, path string, query url.Values, out any) error {
	status, body, err := p.Get(ctx, peer, path, query)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("%s%s: status %d", peer, path, status)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s%s: decoding: %w", peer, path, err)
	}
	return nil
}
