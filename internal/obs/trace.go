package obs

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation in a request-scoped trace. Spans form a
// tree: StartSpan under a context carrying a span records that span's ID
// as the parent; under a context carrying a remote trace context (see
// ContextWithRemote) the span parents under the remote caller's span and
// is flagged Remote. A span is completed by End (idempotent); completed
// spans are retained in the tracer's bounded ring for /debug/traces.
type Span struct {
	tracer *Tracer

	ID       uint64 `json:"id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	TraceID  uint64 `json:"trace_id"`
	// Remote marks a span whose parent lives in another process (its
	// ParentID refers to a span in the caller's tracer, not this one).
	Remote bool              `json:"remote,omitempty"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`

	mu    sync.Mutex
	ended bool
}

// SetAttr attaches a key=value annotation (access class, byte count,
// error text). Call before Finish; later calls are dropped.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
}

// Finish completes the span, stamps its end time, and hands it to the
// tracer's ring. Safe on nil and idempotent.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.End = time.Now()
	s.mu.Unlock()
	if s.tracer != nil {
		s.tracer.record(s)
	}
}

// Duration reports the span's elapsed time (to now if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.End.Sub(s.Start)
	}
	return time.Since(s.Start)
}

type spanCtxKey struct{}

// Tracer issues spans and retains the most recent completed ones in a
// fixed ring. The zero value is unusable; use NewTracer or
// DefaultTracer. A nil tracer issues nil (inert) spans, so call sites
// never need guards.
type Tracer struct {
	capacity int
	base     uint64 // random offset making span IDs unique across processes
	nextID   atomic.Uint64

	mu   sync.Mutex
	ring []*Span
	pos  int
	n    int
}

// NewTracer builds a tracer retaining up to capacity completed spans
// (default 256). Span IDs start from a random 64-bit base so spans from
// different processes can be merged into one tree without ID collisions
// (IDs were purely sequential before trace contexts crossed the wire).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{capacity: capacity, base: rand.Uint64(), ring: make([]*Span, capacity)}
}

var (
	defTracerOnce sync.Once
	defTracer     *Tracer
)

// DefaultTracer returns the process-wide tracer, the one -metrics-addr
// endpoints expose at /debug/traces.
func DefaultTracer() *Tracer {
	defTracerOnce.Do(func() { defTracer = NewTracer(512) })
	return defTracer
}

// StartSpan opens a span named name. If ctx already carries a span, the
// new span becomes its child (same trace ID, parent link); if it carries a
// remote trace context (ContextWithRemote), the span parents under the
// remote caller's span; otherwise it roots a new trace. The returned
// context carries the new span for further nesting.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	id := t.base + t.nextID.Add(1)
	if id == 0 {
		id = 1 // 0 is "no span" everywhere; skip the one wrapping value
	}
	s := &Span{
		tracer: t,
		ID:     id,
		Name:   name,
		Start:  time.Now(),
	}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		s.ParentID = parent.ID
		s.TraceID = parent.TraceID
	} else if tc, ok := remoteFromContext(ctx); ok {
		s.ParentID = tc.SpanID
		s.TraceID = tc.TraceID
		s.Remote = true
	} else {
		s.TraceID = s.ID
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the span the context carries, if any.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceIDFrom returns the trace ID the context carries — from a local
// span first, else a remote trace context — or 0. It is the bridge from
// request context to Histogram.ObserveTrace exemplars.
func TraceIDFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if s := SpanFromContext(ctx); s != nil {
		return s.TraceID
	}
	if tc, ok := remoteFromContext(ctx); ok {
		return tc.TraceID
	}
	return 0
}

func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.pos] = s
	t.pos = (t.pos + 1) % t.capacity
	if t.n < t.capacity {
		t.n++
	}
}

// Completed returns the retained completed spans, oldest first.
func (t *Tracer) Completed() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, t.n)
	start := t.pos - t.n
	if start < 0 {
		start += t.capacity
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%t.capacity])
	}
	return out
}

// SpanRecord is the JSON shape /debug/traces serves and Collector reads:
// one completed span, flattened for the wire. Source is empty on export
// and stamped by the collector with the endpoint it was fetched from.
type SpanRecord struct {
	ID       uint64            `json:"id"`
	ParentID uint64            `json:"parent_id,omitempty"`
	TraceID  uint64            `json:"trace_id"`
	Remote   bool              `json:"remote,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	DurMs    float64           `json:"duration_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Source   string            `json:"source,omitempty"`
}

// Export snapshots the completed-span ring as records, oldest first.
// traceID 0 exports everything; non-zero filters to one trace.
func (t *Tracer) Export(traceID uint64) []SpanRecord {
	spans := t.Completed()
	out := make([]SpanRecord, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		rec := SpanRecord{
			ID: s.ID, ParentID: s.ParentID, TraceID: s.TraceID, Remote: s.Remote,
			Name: s.Name, Start: s.Start,
			DurMs: float64(s.End.Sub(s.Start)) / 1e6,
			Attrs: s.Attrs,
		}
		s.mu.Unlock()
		if traceID != 0 && rec.TraceID != traceID {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// Handler serves the completed-span ring as JSON, oldest first. The
// optional ?trace=<hex trace id> query filters to one trace, which is how
// the collector pulls the remote halves of a specific request.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var traceID uint64
		if v := r.URL.Query().Get("trace"); v != "" {
			id, err := strconv.ParseUint(v, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			traceID = id
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Export(traceID))
	})
}
