package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the observability HTTP surface over a registry, tracer,
// and logger (nil means the process defaults):
//
//	/metrics        registry snapshot as flat JSON
//	/debug/vars     the same snapshot (expvar-compatible shape), plus
//	                the stdlib expvar variables (cmdline, memstats)
//	/debug/pprof/   net/http/pprof profiles (profile, heap, goroutine,
//	                trace, ...)
//	/debug/traces   recently completed spans, oldest first
//	                (?trace=<hex> filters to one trace — the collector's
//	                pull path)
//	/debug/events   recent structured log events, oldest first
//	                (?trace=<hex> filters likewise)
//	/healthz        200 "ok" liveness probe
func NewMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	if tracer == nil {
		tracer = DefaultTracer()
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	// /debug/vars merges the stdlib expvar map (cmdline, memstats) with
	// the registry, serving one flat JSON object like expvar does.
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value.String())
		})
		for name, val := range reg.Snapshot() {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", name, jsonValue(val))
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.Handle("/debug/traces", tracer.Handler())
	mux.Handle("/debug/events", DefaultLogger().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func jsonValue(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "null"
	}
	return string(b)
}

// Server is a running observability endpoint: the bound address plus a
// graceful shutdown handle. Nil-safe, so commands can hold one
// unconditionally and Close it on every exit path even when
// -metrics-addr was off.
type Server struct {
	addr string
	srv  *http.Server
}

// Addr returns the bound listen address (resolved, useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Close gracefully drains the HTTP server: in-flight scrapes finish,
// then the listener closes. The context bounds the drain; on expiry the
// server is closed hard. Safe on nil.
func (s *Server) Close(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close()
	}
	return err
}

// Serve binds the observability mux on addr and serves it on a
// background goroutine. Pass nil reg/tracer for the process defaults.
// Serving metrics also turns on cross-process trace propagation (the
// trace=... line tokens and X-Lonviz-Trace headers) for this process:
// the deployments that can receive a trace are exactly the ones that
// export one.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           NewMux(reg, tracer),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(l) }()
	SetPropagation(true)
	return &Server{addr: l.Addr().String(), srv: srv}, nil
}
