package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// processStart anchors the process.uptime_s snapshot every served
// registry exposes.
var processStart = time.Now()

// ServeOptions configures the observability HTTP surface beyond the
// registry and tracer: retained history, readiness, health degradation,
// and extra endpoints (the SLO engine's /debug/alerts arrives this way —
// obs cannot import internal/obs/slo, so the coupling stays generic).
// The zero value reproduces the classic NewMux surface.
type ServeOptions struct {
	// Registry to serve at /metrics; nil means Default().
	Registry *Registry
	// Tracer to serve at /debug/traces; nil means DefaultTracer().
	Tracer *Tracer
	// TSDB, when set, is served at /debug/tsdb.
	TSDB *TSDB
	// Ready backs /readyz: 503 while starting, 200 after MarkReady. Nil
	// means /readyz always answers 200 (process up = ready).
	Ready *Readiness
	// Health, when set, degrades /healthz: a non-nil error turns the
	// liveness probe into a 503 with a JSON reason. The SLO engine's
	// HealthError plugs in here so a firing critical alert is visible to
	// anything that only speaks health checks.
	Health func() error
	// Extra handlers are mounted verbatim (path -> handler).
	Extra map[string]http.Handler
}

// NewMux builds the classic observability HTTP surface over a registry
// and tracer (nil means the process defaults). See NewMuxWith for the
// full endpoint list.
func NewMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	return NewMuxWith(ServeOptions{Registry: reg, Tracer: tracer})
}

// NewMuxWith builds the observability HTTP surface:
//
//	/metrics        registry snapshot as flat JSON
//	/debug/vars     the same snapshot (expvar-compatible shape), plus
//	                the stdlib expvar variables (cmdline, memstats)
//	/debug/pprof/   net/http/pprof profiles (profile, heap, goroutine,
//	                trace, ...)
//	/debug/traces   recently completed spans, oldest first
//	                (?trace=<hex> filters to one trace — the collector's
//	                pull path)
//	/debug/events   recent structured log events, oldest first
//	                (?trace=<hex> filters likewise)
//	/debug/tsdb     retained time series (when a TSDB is wired):
//	                ?name=&since=&agg= queries, no-args lists series
//	/healthz        liveness probe: 200 "ok", or 503 + JSON reason while
//	                the Health hook reports an error (critical SLO alert)
//	/readyz         startup probe: 503 + JSON phase until the process
//	                marks itself ready, then 200 "ok"
func NewMuxWith(opts ServeOptions) *http.ServeMux {
	reg := opts.Registry
	if reg == nil {
		reg = Default()
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = DefaultTracer()
	}
	// Every served registry carries process.uptime_s so scrapers (the
	// fleet federation in particular) can tell a long-lived peer from one
	// that just restarted without parsing pprof or expvar internals.
	reg.RegisterSnapshot("process", func() map[string]float64 {
		return map[string]float64{"uptime_s": time.Since(processStart).Seconds()}
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	// /debug/vars merges the stdlib expvar map (cmdline, memstats) with
	// the registry, serving one flat JSON object like expvar does.
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value.String())
		})
		for name, val := range reg.Snapshot() {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", name, jsonValue(val))
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.Handle("/debug/traces", tracer.Handler())
	mux.Handle("/debug/events", DefaultLogger().Handler())
	if opts.TSDB != nil {
		mux.Handle("/debug/tsdb", opts.TSDB.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	health := opts.Health
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"status": "degraded",
					"reason": err.Error(),
				})
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	ready := opts.Ready
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !ready.Ready() {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"status": "starting",
				"phase":  ready.Status(),
			})
			return
		}
		fmt.Fprintln(w, "ok")
	})
	for path, h := range opts.Extra {
		mux.Handle(path, h)
	}
	return mux
}

func jsonValue(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "null"
	}
	return string(b)
}

// Server is a running observability endpoint: the bound address plus a
// graceful shutdown handle. Nil-safe, so commands can hold one
// unconditionally and Close it on every exit path even when
// -metrics-addr was off.
type Server struct {
	addr string
	srv  *http.Server
}

// Addr returns the bound listen address (resolved, useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Close gracefully drains the HTTP server: in-flight scrapes finish,
// then the listener closes. The context bounds the drain; on expiry the
// server is closed hard. Safe on nil.
func (s *Server) Close(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close()
	}
	return err
}

// Serve binds the observability mux on addr and serves it on a
// background goroutine. Pass nil reg/tracer for the process defaults.
// Serving metrics also turns on cross-process trace propagation (the
// trace=... line tokens and X-Lonviz-Trace headers) for this process:
// the deployments that can receive a trace are exactly the ones that
// export one.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	return ServeWith(addr, ServeOptions{Registry: reg, Tracer: tracer})
}

// ServeWith is Serve with the full option surface (TSDB, readiness,
// degradable health, extra endpoints).
func ServeWith(addr string, opts ServeOptions) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           NewMuxWith(opts),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(l) }()
	SetPropagation(true)
	return &Server{addr: l.Addr().String(), srv: srv}, nil
}
