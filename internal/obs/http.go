package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the observability HTTP surface over a registry and
// tracer (nil means the process defaults):
//
//	/metrics        registry snapshot as flat JSON
//	/debug/vars     the same snapshot (expvar-compatible shape), plus
//	                the stdlib expvar variables (cmdline, memstats)
//	/debug/pprof/   net/http/pprof profiles (profile, heap, goroutine,
//	                trace, ...)
//	/debug/traces   recently completed spans, oldest first
//	/healthz        200 "ok" liveness probe
func NewMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	if tracer == nil {
		tracer = DefaultTracer()
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	// /debug/vars merges the stdlib expvar map (cmdline, memstats) with
	// the registry, serving one flat JSON object like expvar does.
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value.String())
		})
		for name, val := range reg.Snapshot() {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", name, jsonValue(val))
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.Handle("/debug/traces", tracer.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func jsonValue(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "null"
	}
	return string(b)
}

// Serve binds the observability mux on addr and serves it on a
// background goroutine, returning the bound address (useful with ":0")
// and a shutdown func. Pass nil reg/tracer for the process defaults.
func Serve(addr string, reg *Registry, tracer *Tracer) (string, func() error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           NewMux(reg, tracer),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), srv.Close, nil
}
