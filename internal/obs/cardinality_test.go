package obs

import (
	"fmt"
	"testing"
)

func TestLabelCardinalityGuardFoldsOverflow(t *testing.T) {
	r := NewRegistry()
	r.MaxLabelInstances = 3
	for i := 0; i < 10; i++ {
		r.Counter(Label("ibp.depot.errors", "depot", fmt.Sprintf("h%d:9000", i))).Inc()
	}
	snap := r.Snapshot()

	// The first three distinct label sets register normally.
	for i := 0; i < 3; i++ {
		name := Label("ibp.depot.errors", "depot", fmt.Sprintf("h%d:9000", i))
		if v, ok := snap[name].(int64); !ok || v != 1 {
			t.Fatalf("instance %s = %v, want 1", name, snap[name])
		}
	}
	// Everything past the cap folds into the "other" instance.
	other := Label("ibp.depot.errors", "depot", "other")
	if v, ok := snap[other].(int64); !ok || v != 7 {
		t.Fatalf("folded instance %s = %v, want 7", other, snap[other])
	}
	if _, ok := snap[Label("ibp.depot.errors", "depot", "h5:9000")]; ok {
		t.Fatal("overflowing label set registered instead of folding")
	}
	// Every folded recording tallies, not just the first.
	if v, ok := snap[MObsLabelOverflow].(int64); !ok || v != 7 {
		t.Fatalf("%s = %v, want 7", MObsLabelOverflow, snap[MObsLabelOverflow])
	}
}

func TestLabelCardinalityGuardLeavesPlainNamesAlone(t *testing.T) {
	r := NewRegistry()
	r.MaxLabelInstances = 1
	for i := 0; i < 10; i++ {
		r.Counter(fmt.Sprintf("plain.metric.%d", i)).Inc()
	}
	if got := len(r.Names()); got != 10 {
		t.Fatalf("plain names registered = %d, want 10 (cap must only bound labeled families)", got)
	}
}

func TestLabelCardinalityGuardDefaultCap(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < DefaultMaxLabelInstances+5; i++ {
		r.Counter(Label("fam.ms", "k", fmt.Sprintf("v%03d", i))).Inc()
	}
	snap := r.Snapshot()
	if v, ok := snap[MObsLabelOverflow].(int64); !ok || v != 5 {
		t.Fatalf("%s = %v, want 5", MObsLabelOverflow, snap[MObsLabelOverflow])
	}
}

func TestWithLabel(t *testing.T) {
	cases := []struct {
		name, key, value, want string
	}{
		{"plain.ms", "node", "h1:1", Label("plain.ms", "node", "h1:1")},
		{Label("fam.ms", "depot", "d1"), "node", "h1:1", Label("fam.ms", "depot", "d1", "node", "h1:1")},
		{Label("fam.ms", "z", "1"), "a", "2", Label("fam.ms", "a", "2", "z", "1")},
	}
	for _, c := range cases {
		if got := WithLabel(c.name, c.key, c.value); got != c.want {
			t.Errorf("WithLabel(%q, %q, %q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
}

func TestHistogramExemplarTracksTopBucket(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	h.ObserveTrace(5, 0xaaa) // bucket (1,10]
	if got := h.Exemplar(); got != 0xaaa {
		t.Fatalf("exemplar = %x, want aaa", got)
	}
	h.ObserveTrace(500, 0xbbb) // overflow bucket: new top
	h.ObserveTrace(2, 0xccc)   // lower bucket: must not displace
	if got := h.Exemplar(); got != 0xbbb {
		t.Fatalf("exemplar = %x, want bbb (top bucket wins)", got)
	}
	h.ObserveTrace(600, 0xddd) // same top bucket: most recent wins
	if got := h.Exemplar(); got != 0xddd {
		t.Fatalf("exemplar = %x, want ddd (recency within top bucket)", got)
	}
	// Traceless observations never clobber a retained exemplar.
	h.Observe(900)
	if got := h.Exemplar(); got != 0xddd {
		t.Fatalf("exemplar = %x, want ddd after traceless observe", got)
	}

	snap := h.Snapshot()
	if snap.ExemplarTrace != fmt.Sprintf("%016x", uint64(0xddd)) {
		t.Fatalf("snapshot exemplar_trace = %q", snap.ExemplarTrace)
	}
}

func TestHistogramWithoutTraceHasNoExemplar(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Observe(5)
	if h.Exemplar() != 0 {
		t.Fatal("exemplar set without any traced observation")
	}
	if s := h.Snapshot(); s.ExemplarTrace != "" {
		t.Fatalf("snapshot exemplar_trace = %q, want empty", s.ExemplarTrace)
	}
}
