package obs

import (
	"context"
	"net/http"
	"testing"
)

func TestTraceContextStringRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xDEADBEEF, SpanID: 0x42}
	got, ok := parseTraceValue(tc.String())
	if !ok || got != tc {
		t.Errorf("round trip = %+v ok=%v, want %+v", got, ok, tc)
	}
	for _, bad := range []string{"", "/", "ab/", "/cd", "xyz/1", "1/xyz", "0/1", "1/0", "12"} {
		if _, ok := parseTraceValue(bad); ok {
			t.Errorf("parseTraceValue(%q) accepted", bad)
		}
	}
}

func TestTraceTokenGatedOnPropagation(t *testing.T) {
	tr := NewTracer(8)
	ctx, span := tr.StartSpan(context.Background(), "x")
	defer span.Finish()

	if tok := TraceToken(ctx); tok != "" {
		t.Errorf("token with propagation off = %q, want empty", tok)
	}
	SetPropagation(true)
	defer SetPropagation(false)
	tok := TraceToken(ctx)
	if tok == "" {
		t.Fatal("no token with propagation on and active span")
	}
	tc, ok := ParseTraceToken(tok)
	if !ok || tc.TraceID != span.TraceID || tc.SpanID != span.ID {
		t.Errorf("ParseTraceToken(%q) = %+v ok=%v, want %x/%x", tok, tc, ok, span.TraceID, span.ID)
	}
	// No active span: still empty even when enabled.
	if tok := TraceToken(context.Background()); tok != "" {
		t.Errorf("token without span = %q", tok)
	}
}

func TestStripTraceToken(t *testing.T) {
	fields := []string{"STATUS", "trace=ab/cd"}
	rest, tc, ok := StripTraceToken(fields)
	if !ok || len(rest) != 1 || rest[0] != "STATUS" || tc.TraceID != 0xab || tc.SpanID != 0xcd {
		t.Errorf("strip = %v %+v %v", rest, tc, ok)
	}
	// Token-less lines come back untouched.
	plain := []string{"STATUS"}
	rest, _, ok = StripTraceToken(plain)
	if ok || len(rest) != 1 {
		t.Errorf("strip token-less = %v ok=%v", rest, ok)
	}
	// Malformed tokens are opaque trailing data, not an error.
	mal := []string{"STORE", "cap", "trace=zz/1"}
	rest, _, ok = StripTraceToken(mal)
	if ok || len(rest) != 3 {
		t.Errorf("strip malformed = %v ok=%v", rest, ok)
	}
	if _, _, ok := StripTraceToken(nil); ok {
		t.Error("strip of empty fields claimed a token")
	}
}

func TestInjectExtractHTTP(t *testing.T) {
	SetPropagation(true)
	defer SetPropagation(false)
	tr := NewTracer(8)
	ctx, span := tr.StartSpan(context.Background(), "x")
	defer span.Finish()

	h := http.Header{}
	InjectHTTP(ctx, h)
	tc, ok := ExtractHTTP(h)
	if !ok || tc.TraceID != span.TraceID || tc.SpanID != span.ID {
		t.Errorf("extract = %+v ok=%v, want %x/%x", tc, ok, span.TraceID, span.ID)
	}
	if _, ok := ExtractHTTP(http.Header{}); ok {
		t.Error("extract from empty header succeeded")
	}
	h2 := http.Header{}
	h2.Set(TraceHeader, "not-a-trace")
	if _, ok := ExtractHTTP(h2); ok {
		t.Error("extract of malformed header succeeded")
	}
}

func TestRemoteParenting(t *testing.T) {
	tr := NewTracer(8)
	tc := TraceContext{TraceID: 7, SpanID: 9}
	_, span := tr.StartSpan(ContextWithRemote(context.Background(), tc), "server.op")
	if span.TraceID != 7 || span.ParentID != 9 || !span.Remote {
		t.Errorf("remote-parented span = trace %x parent %x remote %v", span.TraceID, span.ParentID, span.Remote)
	}
	span.Finish()
	// Invalid remote context is ignored: the span roots a fresh trace.
	_, span2 := tr.StartSpan(ContextWithRemote(context.Background(), TraceContext{}), "server.op")
	if span2.Remote || span2.TraceID != span2.ID {
		t.Errorf("invalid remote ctx produced %+v", span2)
	}
	span2.Finish()
	// A local parent wins over a lingering remote context.
	rctx := ContextWithRemote(context.Background(), tc)
	pctx, parent := tr.StartSpan(rctx, "parent")
	_, child := tr.StartSpan(pctx, "child")
	if child.ParentID != parent.ID || child.Remote {
		t.Errorf("child under local parent = parent %x remote %v", child.ParentID, child.Remote)
	}
	child.Finish()
	parent.Finish()
}

// TestTraceTokenDisabledAllocs pins the acceptance contract: with
// -metrics-addr off (propagation disabled) the emit helpers are zero-cost
// even under an active span, so untraced deployments pay nothing.
func TestTraceTokenDisabledAllocs(t *testing.T) {
	if PropagationEnabled() {
		t.Fatal("propagation unexpectedly on at test start")
	}
	tr := NewTracer(8)
	ctx, span := tr.StartSpan(context.Background(), "x")
	defer span.Finish()
	h := http.Header{}

	if n := testing.AllocsPerRun(100, func() {
		if TraceToken(ctx) != "" {
			t.Fatal("token emitted while disabled")
		}
	}); n != 0 {
		t.Errorf("TraceToken allocs while disabled = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		InjectHTTP(ctx, h)
	}); n != 0 {
		t.Errorf("InjectHTTP allocs while disabled = %v, want 0", n)
	}
	if len(h) != 0 {
		t.Error("InjectHTTP set a header while disabled")
	}
}
