// Package timevary extends the system to time-varying simulations — the
// paper's closing future-work item ("We will continue to develop remote
// visualization systems for flow fields and time-varying simulations as
// well"). A Sequence publishes one ordinary light field database per
// timestep under derived dataset names; the Player browses a view
// direction through time, prefetching the same angular window of upcoming
// timesteps so playback hides WAN latency the same way the quadrant policy
// hides panning latency.
package timevary

import (
	"context"
	"fmt"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/geom"
	"lonviz/internal/lightfield"
	"lonviz/internal/render"
)

// Sequence describes a time-varying light field database.
type Sequence struct {
	// Base is the dataset family name.
	Base string
	// P is the (shared) database geometry of every timestep.
	P lightfield.Params
	// Steps is the number of timesteps.
	Steps int
}

// NewSequence validates the description.
func NewSequence(base string, p lightfield.Params, steps int) (*Sequence, error) {
	if base == "" {
		return nil, fmt.Errorf("timevary: empty base dataset name")
	}
	if steps <= 0 {
		return nil, fmt.Errorf("timevary: non-positive step count %d", steps)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Sequence{Base: base, P: p, Steps: steps}, nil
}

// Dataset derives the DVS dataset name for timestep t.
func (s *Sequence) Dataset(t int) string {
	return fmt.Sprintf("%s@t%03d", s.Base, t)
}

// ValidStep reports whether t is a timestep of the sequence.
func (s *Sequence) ValidStep(t int) bool { return t >= 0 && t < s.Steps }

// SourceFactory builds the view set source for one timestep's dataset —
// the same streaming stack as the static system, instantiated per step.
type SourceFactory func(step int, dataset string) (agent.ViewSetSource, error)

// Player browses a time-varying database: spatial movement within a step
// works exactly like the static viewer; advancing time swaps databases,
// and the temporal prefetcher pulls the current angular window of the next
// Lookahead steps in the background.
type Player struct {
	Seq     *Sequence
	Factory SourceFactory
	// Lookahead is the temporal prefetch depth in steps (default 1; 0
	// disables temporal prefetch).
	Lookahead int

	viewers map[int]*agent.Viewer
	sources map[int]agent.ViewSetSource
	step    int
}

// NewPlayer validates inputs.
func NewPlayer(seq *Sequence, f SourceFactory) (*Player, error) {
	if seq == nil {
		return nil, fmt.Errorf("timevary: player needs a sequence")
	}
	if f == nil {
		return nil, fmt.Errorf("timevary: player needs a source factory")
	}
	return &Player{
		Seq:       seq,
		Factory:   f,
		Lookahead: 1,
		viewers:   make(map[int]*agent.Viewer),
		sources:   make(map[int]agent.ViewSetSource),
	}, nil
}

func (pl *Player) source(step int) (agent.ViewSetSource, error) {
	if src, ok := pl.sources[step]; ok {
		return src, nil
	}
	src, err := pl.Factory(step, pl.Seq.Dataset(step))
	if err != nil {
		return nil, fmt.Errorf("timevary: step %d source: %w", step, err)
	}
	pl.sources[step] = src
	return src, nil
}

func (pl *Player) viewer(step int) (*agent.Viewer, error) {
	if v, ok := pl.viewers[step]; ok {
		return v, nil
	}
	src, err := pl.source(step)
	if err != nil {
		return nil, err
	}
	v, err := agent.NewViewer(pl.Seq.P, src)
	if err != nil {
		return nil, err
	}
	pl.viewers[step] = v
	return v, nil
}

// Step returns the current timestep.
func (pl *Player) Step() int { return pl.step }

// Seek moves to timestep t viewing from direction sp, returning the access
// record for the view set that had to be present. Temporal prefetch for
// steps t+1..t+Lookahead starts in the background.
func (pl *Player) Seek(ctx context.Context, t int, sp geom.Spherical) (agent.AccessRecord, error) {
	if !pl.Seq.ValidStep(t) {
		return agent.AccessRecord{}, fmt.Errorf("timevary: step %d outside [0, %d)", t, pl.Seq.Steps)
	}
	v, err := pl.viewer(t)
	if err != nil {
		return agent.AccessRecord{}, err
	}
	rec, err := v.MoveTo(ctx, sp)
	if err != nil {
		return rec, err
	}
	pl.step = t
	pl.prefetchAhead(t, sp)
	return rec, nil
}

// Advance plays the next timestep at the same view direction.
func (pl *Player) Advance(ctx context.Context, sp geom.Spherical) (agent.AccessRecord, error) {
	return pl.Seek(ctx, pl.step+1, sp)
}

// prefetchAhead warms the next steps' agents with the current angular
// window — the temporal analogue of the quadrant policy.
func (pl *Player) prefetchAhead(t int, sp geom.Spherical) {
	i, j := pl.Seq.P.NearestCamera(sp)
	id := pl.Seq.P.ViewSetOf(i, j)
	for dt := 1; dt <= pl.Lookahead; dt++ {
		step := t + dt
		if !pl.Seq.ValidStep(step) {
			break
		}
		src, err := pl.source(step)
		if err != nil {
			continue // step source unavailable; playback will surface it
		}
		go func(src agent.ViewSetSource) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			// GetViewSet populates the step's agent cache; the frame is
			// discarded here.
			_, _, _ = src.GetViewSet(ctx, id)
		}(src)
	}
}

// Render reconstructs the current timestep's view from direction sp.
func (pl *Player) Render(sp geom.Spherical, dist float64, res int) (*render.Image, lightfield.RenderStats, error) {
	v, err := pl.viewer(pl.step)
	if err != nil {
		return nil, lightfield.RenderStats{}, err
	}
	return v.Render(sp, dist, res)
}

// TimeGenerator builds per-step procedural generators whose content
// evolves smoothly with the step index — a stand-in for a time-varying
// simulation output.
func TimeGenerator(seq *Sequence, baseSeed int64) map[string]lightfield.Generator {
	out := make(map[string]lightfield.Generator, seq.Steps)
	for t := 0; t < seq.Steps; t++ {
		gen, err := lightfield.NewProceduralGenerator(seq.P, baseSeed+int64(t))
		if err != nil {
			// NewSequence validated P already; this cannot fail.
			panic("timevary: " + err.Error())
		}
		out[seq.Dataset(t)] = gen
	}
	return out
}
