package timevary

import (
	"context"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
)

func seqParams() lightfield.Params { return lightfield.ScaledParams(45, 2, 8) }

func TestNewSequenceValidation(t *testing.T) {
	p := seqParams()
	if _, err := NewSequence("", p, 3); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := NewSequence("d", p, 0); err == nil {
		t.Error("zero steps accepted")
	}
	bad := p
	bad.Res = 0
	if _, err := NewSequence("d", bad, 3); err == nil {
		t.Error("bad params accepted")
	}
	s, err := NewSequence("neghip", p, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dataset(7) != "neghip@t007" {
		t.Errorf("dataset = %q", s.Dataset(7))
	}
	if !s.ValidStep(0) || !s.ValidStep(11) || s.ValidStep(12) || s.ValidStep(-1) {
		t.Error("ValidStep wrong")
	}
}

// timeRig publishes every timestep through the shared streaming stack and
// returns a factory of per-step client agents (kept for inspection).
func timeRig(t *testing.T, seq *Sequence) (SourceFactory, map[int]*agent.ClientAgent) {
	t.Helper()
	var depots []string
	for i := 0; i < 2; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		depots = append(depots, addr)
	}
	dvsSrv := dvs.NewServer("")
	dvsAddr, err := dvsSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dvsSrv.Close() })

	for dataset, gen := range TimeGenerator(seq, 100) {
		sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
			Dataset: dataset,
			Gen:     gen,
			Depots:  depots,
			DVS:     &dvs.Client{Addr: dvsAddr},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sa.Close() })
		if _, err := sa.PrecomputeAll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	agents := make(map[int]*agent.ClientAgent)
	factory := func(step int, dataset string) (agent.ViewSetSource, error) {
		ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
			Dataset: dataset,
			Params:  seq.P,
			DVS:     &dvs.Client{Addr: dvsAddr},
		})
		if err != nil {
			return nil, err
		}
		t.Cleanup(ca.Close)
		agents[step] = ca
		return ca, nil
	}
	return factory, agents
}

func TestPlayerPlaybackWithTemporalPrefetch(t *testing.T) {
	seq, err := NewSequence("flow", seqParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	factory, agents := timeRig(t, seq)
	pl, err := NewPlayer(seq, factory)
	if err != nil {
		t.Fatal(err)
	}
	pl.Lookahead = 1
	sp := geom.Spherical{Theta: 1.4, Phi: 2.0}

	rec, err := pl.Seek(context.Background(), 0, sp)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Class != agent.AccessWAN {
		t.Errorf("first frame class = %v", rec.Class)
	}
	// Give the temporal prefetch of step 1 time to land in step 1's agent.
	i, j := seq.P.NearestCamera(sp)
	id := seq.P.ViewSetOf(i, j)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ca, ok := agents[1]; ok {
			if _, rep, err := ca.GetViewSet(context.Background(), id); err == nil && rep.Class == agent.AccessHit {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("temporal prefetch never warmed step 1")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Advancing is now an agent-cache hit.
	rec, err = pl.Advance(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Class != agent.AccessHit {
		t.Errorf("prefetched step class = %v", rec.Class)
	}
	if pl.Step() != 1 {
		t.Errorf("step = %d", pl.Step())
	}
	// Rendering the current frame works.
	im, stats, err := pl.Render(sp, seq.P.OuterRadius*1.6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if im.Res != 16 || stats.Filled == 0 {
		t.Errorf("render stats = %+v", stats)
	}
}

func TestPlayerStepsDiffer(t *testing.T) {
	seq, _ := NewSequence("flow", seqParams(), 2)
	factory, _ := timeRig(t, seq)
	pl, _ := NewPlayer(seq, factory)
	pl.Lookahead = 0
	sp := geom.Spherical{Theta: 1.4, Phi: 2.0}
	if _, err := pl.Seek(context.Background(), 0, sp); err != nil {
		t.Fatal(err)
	}
	im0, _, err := pl.Render(sp, seq.P.OuterRadius*1.6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Seek(context.Background(), 1, sp); err != nil {
		t.Fatal(err)
	}
	im1, _, err := pl.Render(sp, seq.P.OuterRadius*1.6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if im0.Equal(im1) {
		t.Error("timesteps rendered identically; time-varying content missing")
	}
}

func TestPlayerValidation(t *testing.T) {
	seq, _ := NewSequence("d", seqParams(), 3)
	if _, err := NewPlayer(nil, nil); err == nil {
		t.Error("nil sequence accepted")
	}
	if _, err := NewPlayer(seq, nil); err == nil {
		t.Error("nil factory accepted")
	}
	pl, err := NewPlayer(seq, func(step int, dataset string) (agent.ViewSetSource, error) {
		t.Fatal("factory must not run for invalid steps")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Seek(context.Background(), 5, geom.Spherical{}); err == nil {
		t.Error("out-of-range step accepted")
	}
	if _, err := pl.Seek(context.Background(), -1, geom.Spherical{}); err == nil {
		t.Error("negative step accepted")
	}
}

func TestTimeGeneratorCoversSteps(t *testing.T) {
	seq, _ := NewSequence("d", seqParams(), 5)
	gens := TimeGenerator(seq, 7)
	if len(gens) != 5 {
		t.Fatalf("generators = %d", len(gens))
	}
	for tstep := 0; tstep < 5; tstep++ {
		if _, ok := gens[seq.Dataset(tstep)]; !ok {
			t.Errorf("missing generator for step %d", tstep)
		}
	}
}
