package dvs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startDVS(t *testing.T, parent string) (*Server, *Client) {
	t.Helper()
	s := NewServer(parent)
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, &Client{Addr: addr}
}

func TestPutGetWire(t *testing.T) {
	_, cl := startDVS(t, "")
	key := Key{Dataset: "neghip", ViewSet: "r01c02"}
	xml := []byte("<exnode name=\"r01c02\" length=\"0\"></exnode>")
	if err := cl.Put(context.Background(), key, xml); err != nil {
		t.Fatal(err)
	}
	reps, err := cl.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || string(reps[0]) != string(xml) {
		t.Errorf("got %d replicas: %q", len(reps), reps)
	}
	// Second Put appends a replica.
	if err := cl.Put(context.Background(), key, []byte("<exnode/>")); err != nil {
		t.Fatal(err)
	}
	reps, err = cl.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Errorf("replicas = %d, want 2", len(reps))
	}
}

func TestGetMiss(t *testing.T) {
	_, cl := startDVS(t, "")
	_, err := cl.Get(context.Background(), Key{Dataset: "d", ViewSet: "none"})
	if !errors.Is(err, ErrMiss) {
		t.Errorf("miss error = %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	s := NewServer("")
	if err := s.Put(Key{}, []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Put(Key{Dataset: "d", ViewSet: "v"}, nil); err == nil {
		t.Error("empty exnode accepted")
	}
}

func TestAgentTable(t *testing.T) {
	_, cl := startDVS(t, "")
	if _, err := cl.AgentFor(context.Background(), "neghip"); !errors.Is(err, ErrMiss) {
		t.Errorf("agent miss = %v", err)
	}
	if err := cl.RegisterAgent(context.Background(), "neghip", "agent:7000"); err != nil {
		t.Fatal(err)
	}
	addr, err := cl.AgentFor(context.Background(), "neghip")
	if err != nil || addr != "agent:7000" {
		t.Errorf("agent = %q, %v", addr, err)
	}
}

func TestHierarchicalResolution(t *testing.T) {
	// root holds the data; leaf forwards to root and caches.
	root, rootCl := startDVS(t, "")
	key := Key{Dataset: "neghip", ViewSet: "r05c07"}
	xml := []byte("<exnode name=\"x\" length=\"0\"></exnode>")
	if err := root.Put(key, xml); err != nil {
		t.Fatal(err)
	}
	leaf, leafCl := startDVS(t, rootCl.Addr)
	reps, err := leafCl.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || string(reps[0]) != string(xml) {
		t.Fatalf("hierarchical get = %q", reps)
	}
	// The leaf cached the answer: a direct local lookup now hits.
	if local := leaf.lookupLocal(key); len(local) != 1 {
		t.Error("leaf did not cache the parent's answer")
	}
	// DESIGN.md property: hierarchical lookup equals flat lookup.
	flat, err := rootCl.Get(context.Background(), key)
	if err != nil || string(flat[0]) != string(reps[0]) {
		t.Error("hierarchical and flat lookups diverge")
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	root, rootCl := startDVS(t, "")
	_, midCl := startDVS(t, rootCl.Addr)
	_, leafCl := startDVS(t, midCl.Addr)
	key := Key{Dataset: "d", ViewSet: "deep"}
	if err := root.Put(key, []byte("<exnode/>")); err != nil {
		t.Fatal(err)
	}
	reps, err := leafCl.Get(context.Background(), key)
	if err != nil || len(reps) != 1 {
		t.Fatalf("3-level resolution: %v, %d", err, len(reps))
	}
	// Full-hierarchy miss propagates as MISS.
	if _, err := leafCl.Get(context.Background(), Key{Dataset: "d", ViewSet: "nope"}); !errors.Is(err, ErrMiss) {
		t.Errorf("deep miss = %v", err)
	}
}

func TestOnDemandGeneration(t *testing.T) {
	root, rootCl := startDVS(t, "")
	var mu sync.Mutex
	calls := 0
	root.Generate = func(ctx context.Context, agentAddr string, key Key) ([]byte, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		if agentAddr != "sa:9" {
			return nil, fmt.Errorf("wrong agent %q", agentAddr)
		}
		return []byte("<exnode generated=\"1\"/>"), nil
	}
	if err := root.RegisterAgent("neghip", "sa:9"); err != nil {
		t.Fatal(err)
	}
	key := Key{Dataset: "neghip", ViewSet: "r09c09"}
	reps, err := rootCl.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || string(reps[0]) != "<exnode generated=\"1\"/>" {
		t.Fatalf("generated = %q", reps)
	}
	// Second query hits the table, no second generation.
	if _, err := rootCl.Get(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("generator called %d times", calls)
	}
}

func TestOnDemandGenerationFailure(t *testing.T) {
	root, rootCl := startDVS(t, "")
	root.Generate = func(ctx context.Context, agentAddr string, key Key) ([]byte, error) {
		return nil, errors.New("render farm on fire")
	}
	root.RegisterAgent("d", "sa:1")
	_, err := rootCl.Get(context.Background(), Key{Dataset: "d", ViewSet: "v"})
	if err == nil || errors.Is(err, ErrMiss) {
		t.Errorf("generation failure = %v", err)
	}
}

func TestResolveContextCancel(t *testing.T) {
	s := NewServer("")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cl := &Client{Addr: "127.0.0.1:1"}
	if _, err := cl.Get(ctx, Key{Dataset: "d", ViewSet: "v"}); err == nil {
		t.Error("canceled get succeeded")
	}
	_ = s
}

func TestParentUnreachable(t *testing.T) {
	leaf := NewServer("127.0.0.1:1") // nothing listens there
	leaf.Timeout = 500 * time.Millisecond
	_, err := leaf.Resolve(context.Background(), Key{Dataset: "d", ViewSet: "v"})
	if err == nil {
		t.Error("resolve with dead parent succeeded")
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	_, cl := startDVS(t, "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := Key{Dataset: "d", ViewSet: fmt.Sprintf("vs%02d", g)}
			if err := cl.Put(context.Background(), key, []byte("<exnode/>")); err != nil {
				t.Error(err)
				return
			}
			if _, err := cl.Get(context.Background(), key); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}

func TestReplaceDropsPriorReplicas(t *testing.T) {
	_, cl := startDVS(t, "")
	key := Key{Dataset: "neghip", ViewSet: "r01c02"}
	old := []byte("<exnode name=\"old\" length=\"0\"></exnode>")
	older := []byte("<exnode name=\"older\" length=\"0\"></exnode>")
	for _, xml := range [][]byte{older, old} {
		if err := cl.Put(context.Background(), key, xml); err != nil {
			t.Fatal(err)
		}
	}

	// Replace must leave exactly one replica: the new document. This is
	// the republish path after replica repair — resolvers use the first
	// replica, so appending a repaired exNode would leave them on the
	// stale layout forever.
	repaired := []byte("<exnode name=\"repaired\" length=\"0\"></exnode>")
	if err := cl.Replace(context.Background(), key, repaired); err != nil {
		t.Fatal(err)
	}
	reps, err := cl.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || string(reps[0]) != string(repaired) {
		t.Errorf("after replace: %d replicas, first %q", len(reps), reps[0])
	}

	// Replace on a key that never existed behaves like a first Put.
	fresh := Key{Dataset: "neghip", ViewSet: "r09c09"}
	if err := cl.Replace(context.Background(), fresh, repaired); err != nil {
		t.Fatal(err)
	}
	if reps, err := cl.Get(context.Background(), fresh); err != nil || len(reps) != 1 {
		t.Errorf("replace-as-first-put: %d replicas, err %v", len(reps), err)
	}
}

func TestReplaceValidation(t *testing.T) {
	s := NewServer("")
	if err := s.Replace(Key{Dataset: "d", ViewSet: "v"}, nil); err == nil {
		t.Error("empty document accepted")
	}
	if err := s.Replace(Key{}, []byte("<exnode/>")); err == nil {
		t.Error("empty key accepted")
	}
}
