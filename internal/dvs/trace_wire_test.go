package dvs

import (
	"context"
	"testing"

	"lonviz/internal/obs"
)

// TestDVSTracePropagation checks the DVS half of the tentpole: GET/PUT
// lines carry the trailing trace= token and the directory's server-side
// span is parented under the calling client span, sharing its trace ID.
func TestDVSTracePropagation(t *testing.T) {
	obs.SetPropagation(true)
	defer obs.SetPropagation(false)

	srv, cl := startDVS(t, "")
	serverTracer := obs.NewTracer(64)
	srv.Tracer = serverTracer

	clientTracer := obs.NewTracer(64)
	ctx, span := clientTracer.StartSpan(context.Background(), "test.client")
	key := Key{Dataset: "neghip", ViewSet: "r01c02"}
	if err := cl.Put(ctx, key, []byte("<exnode/>")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	span.Finish()

	recs := serverTracer.Export(span.TraceID)
	if len(recs) != 2 {
		t.Fatalf("server spans in trace %x = %d, want 2 (PUT+GET): %+v",
			span.TraceID, len(recs), recs)
	}
	ops := map[string]bool{}
	for _, r := range recs {
		if r.Name != obs.SpanDVSServe {
			t.Errorf("server span name = %q, want %q", r.Name, obs.SpanDVSServe)
		}
		if r.TraceID != span.TraceID || r.ParentID != span.ID || !r.Remote {
			t.Errorf("span trace=%x parent=%x remote=%v, want %x/%x/true",
				r.TraceID, r.ParentID, r.Remote, span.TraceID, span.ID)
		}
		ops[r.Attrs["op"]] = true
	}
	if !ops["PUT"] || !ops["GET"] {
		t.Errorf("server span ops = %v, want PUT and GET", ops)
	}
}

// TestDVSTokenlessBackwardCompat: with propagation off (the default) the
// client writes pre-tracing request lines, the server parses them as
// before and records no spans.
func TestDVSTokenlessBackwardCompat(t *testing.T) {
	if obs.PropagationEnabled() {
		t.Fatal("propagation unexpectedly on at test start")
	}
	srv, cl := startDVS(t, "")
	serverTracer := obs.NewTracer(64)
	srv.Tracer = serverTracer

	ctx, span := obs.NewTracer(64).StartSpan(context.Background(), "test.client")
	key := Key{Dataset: "neghip", ViewSet: "r03c04"}
	if err := cl.Put(ctx, key, []byte("<exnode/>")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	span.Finish()
	if got := serverTracer.Completed(); len(got) != 0 {
		t.Errorf("server recorded %d spans with propagation off", len(got))
	}
}

// TestDVSHierarchyTracePropagation: a miss at a leaf recurses to its
// parent; the upstream query must re-propagate the same trace so both
// directory levels appear in one tree.
func TestDVSHierarchyTracePropagation(t *testing.T) {
	obs.SetPropagation(true)
	defer obs.SetPropagation(false)

	rootSrv, rootCl := startDVS(t, "")
	rootTracer := obs.NewTracer(64)
	rootSrv.Tracer = rootTracer
	leafSrv, leafCl := startDVS(t, rootCl.Addr)
	leafSrv.Tracer = obs.NewTracer(64)

	key := Key{Dataset: "neghip", ViewSet: "r05c06"}
	if err := rootCl.Put(context.Background(), key, []byte("<exnode/>")); err != nil {
		t.Fatal(err)
	}

	ctx, span := obs.NewTracer(64).StartSpan(context.Background(), "test.client")
	if _, err := leafCl.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	span.Finish()

	rootRecs := rootTracer.Export(span.TraceID)
	if len(rootRecs) != 1 {
		t.Fatalf("root-level spans in client trace = %d, want 1 (recursed GET)", len(rootRecs))
	}
	if rootRecs[0].ParentID == span.ID {
		t.Error("root span parented directly under the client; want the leaf's serve span in between")
	}
	leafRecs := leafSrv.Tracer.Export(span.TraceID)
	if len(leafRecs) != 1 || leafRecs[0].ParentID != span.ID {
		t.Fatalf("leaf spans = %+v, want one parented under client span %x", leafRecs, span.ID)
	}
	if rootRecs[0].ParentID != leafRecs[0].ID {
		t.Errorf("root span parent = %x, want leaf serve span %x", rootRecs[0].ParentID, leafRecs[0].ID)
	}
}
