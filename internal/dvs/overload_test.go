package dvs

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"lonviz/internal/obs"
	"lonviz/internal/overload"
)

// sheddingServer starts a DVS whose single admission slot is held by the
// test, so every request is shed.
func sheddingServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer("")
	s.Obs = obs.NewRegistry()
	s.Admission = overload.NewGate(1, 0, 10*time.Millisecond)
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	release, err := s.Admission.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(release)
	return s, addr
}

// TestAdmissionShedsTypedBusy: a full gate turns every client operation
// into the typed ErrBusy, and the shed counter fires.
func TestAdmissionShedsTypedBusy(t *testing.T) {
	s, addr := sheddingServer(t)
	cl := &Client{Addr: addr}

	// Body-less operations only: a shed PUT closes the connection with
	// the XML body unread, so the reply may be lost to a TCP reset —
	// clients see *some* error either way, but the typed assert would
	// be flaky.
	if _, err := cl.Get(context.Background(), Key{Dataset: "d", ViewSet: "r0c0"}); !errors.Is(err, ErrBusy) {
		t.Fatalf("Get: %v, want ErrBusy", err)
	}
	if err := cl.RegisterAgent(context.Background(), "d", "127.0.0.1:1"); !errors.Is(err, ErrBusy) {
		t.Fatalf("RegisterAgent: %v, want ErrBusy", err)
	}
	if _, err := cl.AgentFor(context.Background(), "d"); !errors.Is(err, ErrBusy) {
		t.Fatalf("AgentFor: %v, want ErrBusy", err)
	}
	shed := s.Obs.Counter(obs.Label(obs.MDVSShed, "reason", overload.ReasonQueueFull)).Value()
	if shed < 3 {
		t.Fatalf("shed counter = %d, want >= 3", shed)
	}
}

// TestAdmissionAdmitsAfterDrain: releasing the slot restores service on
// the same client.
func TestAdmissionAdmitsAfterDrain(t *testing.T) {
	s := NewServer("")
	s.Obs = obs.NewRegistry()
	s.Admission = overload.NewGate(1, 0, 10*time.Millisecond)
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	release, err := s.Admission.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cl := &Client{Addr: addr}
	if err := cl.RegisterAgent(context.Background(), "d", "127.0.0.1:1"); !errors.Is(err, ErrBusy) {
		t.Fatalf("RegisterAgent while full: %v, want ErrBusy", err)
	}
	release()
	if err := cl.Put(context.Background(), Key{Dataset: "d", ViewSet: "r0c0"}, []byte("<x/>")); err != nil {
		t.Fatalf("Put after drain: %v", err)
	}
	reps, err := cl.Get(context.Background(), Key{Dataset: "d", ViewSet: "r0c0"})
	if err != nil || len(reps) != 1 {
		t.Fatalf("Get after drain: %d reps, %v", len(reps), err)
	}
}

// TestBusyWireOldClientNewDVS: an old client (raw conn, generic ERR
// parsing) sees a shed as a plain "ERR BUSY ..." line it already knows
// how to fail on — the wire stays line-compatible.
func TestBusyWireOldClientNewDVS(t *testing.T) {
	_, addr := sheddingServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "AGENT d\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR BUSY ") {
		t.Fatalf("shed reply = %q, want ERR BUSY prefix", line)
	}
}

// TestDeadlineTokenShedsExpired: a request arriving with deadline=0 is
// shed even with Admission nil — deadline enforcement needs no gate.
func TestDeadlineTokenShedsExpired(t *testing.T) {
	s := NewServer("")
	s.Obs = obs.NewRegistry()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "AGENT d deadline=0\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR BUSY ") {
		t.Fatalf("expired-budget reply = %q, want ERR BUSY prefix", line)
	}
	// A healthy budget passes through to normal dispatch.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "AGENT d deadline=5000\n")
	line, err = bufio.NewReader(conn2).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line) != "MISS" {
		t.Fatalf("healthy-budget reply = %q, want MISS", line)
	}
}

// TestDeadlineTokenEmittedByClient: with propagation on and a caller
// deadline, client request lines carry the deadline token; with it off
// they remain the bare pre-overload shape.
func TestDeadlineTokenEmittedByClient(t *testing.T) {
	lines := make(chan string, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				line, err := bufio.NewReader(c).ReadString('\n')
				if err != nil {
					return
				}
				lines <- line
				fmt.Fprintf(c, "MISS\n")
			}(c)
		}
	}()
	cl := &Client{Addr: l.Addr().String()}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	obs.SetPropagation(true)
	defer obs.SetPropagation(false)
	if _, err := cl.AgentFor(ctx, "d"); !errors.Is(err, ErrMiss) {
		t.Fatalf("AgentFor: %v", err)
	}
	if line := <-lines; !strings.HasPrefix(line, "AGENT d deadline=") {
		t.Fatalf("request line = %q, want deadline token", line)
	}

	obs.SetPropagation(false)
	if _, err := cl.AgentFor(ctx, "d"); !errors.Is(err, ErrMiss) {
		t.Fatalf("AgentFor: %v", err)
	}
	if line := <-lines; line != "AGENT d\n" {
		t.Fatalf("pre-overload request line = %q, want bare request", line)
	}
}
