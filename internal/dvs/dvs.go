// Package dvs implements the Dictionary of View Sets (paper section 3.6):
// the DNS-like lookup service mapping view set identifiers to the exNodes
// of their replicas. A DVS server maintains two tables — the exNode table
// and the server-agent table. Servers form a hierarchy: a query that
// misses locally is forwarded to the parent recursively, and a hit on any
// level is cached on the way back down (like DNS resolution). When the
// whole hierarchy misses, the view set has not been computed yet; the DVS
// consults its server-agent table and forwards the request to the right
// server agent for on-demand generation, then records the returned exNode.
package dvs

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
	"lonviz/internal/overload"
)

// Key identifies a view set within a dataset.
type Key struct {
	Dataset string
	ViewSet string
}

func (k Key) String() string { return k.Dataset + "/" + k.ViewSet }

// ErrMiss is returned when no exNode is known and no server agent can
// produce one.
var ErrMiss = errors.New("dvs: view set not found")

// ErrProto reports a malformed request or response.
var ErrProto = errors.New("dvs: protocol error")

// ErrBusy is returned when a DVS server sheds the request under overload
// (admission queue full, or the propagated deadline budget already spent).
// It is retryable: back off and ask again, or consult another level of
// the hierarchy. The package keeps its own sentinel rather than borrowing
// ibp's because dvs deliberately has no dependency on the depot protocol.
var ErrBusy = errors.New("dvs: server busy, retry later")

const (
	maxLine  = 2048
	maxEntry = 4 << 20 // one exNode XML document
)

// Dialer abstracts connection establishment (netsim-compatible).
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

type netDialer struct{}

func (netDialer) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// GenerateFunc asks a server agent to render and upload a view set,
// returning the exNode XML for the freshly uploaded data. The agent
// package provides the standard implementation; keeping it a function
// avoids a dependency cycle.
type GenerateFunc func(ctx context.Context, agentAddr string, key Key) ([]byte, error)

// Server is one level of the DVS hierarchy.
type Server struct {
	// Parent is the next level up (empty for the root).
	Parent string
	// Dialer shapes connections to the parent; nil means plain TCP.
	Dialer Dialer
	// Generate, when set, lets this server forward misses to a registered
	// server agent for on-demand generation. Typically only the root level
	// sets it.
	Generate GenerateFunc
	// Timeout bounds upstream queries (default 30s).
	Timeout time.Duration
	// Admission bounds concurrent request execution: beyond its in-flight
	// and queue capacity, requests are rejected with ERR BUSY so clients
	// back off instead of queueing behind an overloaded directory. nil
	// admits everything; requests arriving with an exhausted deadline=
	// budget are shed regardless.
	Admission *overload.Gate
	// Tracer receives the server-side request spans opened for traced
	// requests (those carrying a trace= token); nil records into
	// obs.DefaultTracer().
	Tracer *obs.Tracer
	// Obs receives the dvs.shed counters and load gauges; nil records
	// into obs.Default().
	Obs *obs.Registry

	mu      sync.Mutex
	exnodes map[Key][][]byte  // exNode table: replicas' XML documents
	agents  map[string]string // server agent table: dataset -> agent addr
	lis     net.Listener
	closed  bool

	metricsOnce sync.Once
}

// NewServer creates an empty DVS level.
func NewServer(parent string) *Server {
	return &Server{
		Parent:  parent,
		exnodes: make(map[Key][][]byte),
		agents:  make(map[string]string),
	}
}

// Put records an exNode replica for key (appending to existing replicas).
func (s *Server) Put(key Key, exnodeXML []byte) error {
	if key.Dataset == "" || key.ViewSet == "" {
		return fmt.Errorf("dvs: empty key %+v", key)
	}
	if len(exnodeXML) == 0 || len(exnodeXML) > maxEntry {
		return fmt.Errorf("dvs: exnode size %d out of range", len(exnodeXML))
	}
	cp := append([]byte{}, exnodeXML...)
	s.mu.Lock()
	s.exnodes[key] = append(s.exnodes[key], cp)
	s.mu.Unlock()
	return nil
}

// Replace overwrites every recorded exNode replica for key with the single
// given document. Maintenance tooling uses it after lease renewal or
// replica repair so browsing clients resolve the updated layout instead of
// an accumulating list of stale ones. (Parents and children in the
// hierarchy may still hold cached copies until they refresh.)
func (s *Server) Replace(key Key, exnodeXML []byte) error {
	if key.Dataset == "" || key.ViewSet == "" {
		return fmt.Errorf("dvs: empty key %+v", key)
	}
	if len(exnodeXML) == 0 || len(exnodeXML) > maxEntry {
		return fmt.Errorf("dvs: exnode size %d out of range", len(exnodeXML))
	}
	cp := append([]byte{}, exnodeXML...)
	s.mu.Lock()
	s.exnodes[key] = [][]byte{cp}
	s.mu.Unlock()
	return nil
}

// RegisterAgent records the server agent responsible for dataset.
func (s *Server) RegisterAgent(dataset, agentAddr string) error {
	if dataset == "" || agentAddr == "" {
		return fmt.Errorf("dvs: empty agent registration")
	}
	s.mu.Lock()
	s.agents[dataset] = agentAddr
	s.mu.Unlock()
	return nil
}

// AgentFor returns the registered server agent for dataset.
func (s *Server) AgentFor(dataset string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.agents[dataset]
	return a, ok
}

// lookupLocal returns local replicas for key.
func (s *Server) lookupLocal(key Key) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	reps := s.exnodes[key]
	out := make([][]byte, len(reps))
	copy(out, reps)
	return out
}

// Resolve answers a query at this level: local table first, then the
// parent hierarchy (caching the answer), then on-demand generation via the
// server-agent table.
func (s *Server) Resolve(ctx context.Context, key Key) ([][]byte, error) {
	if reps := s.lookupLocal(key); len(reps) > 0 {
		return reps, nil
	}
	if s.Parent != "" {
		cl := &Client{Addr: s.Parent, Dialer: s.Dialer, Timeout: s.Timeout}
		reps, err := cl.Get(ctx, key)
		if err == nil && len(reps) > 0 {
			// Cache on the way down, DNS style.
			s.mu.Lock()
			if len(s.exnodes[key]) == 0 {
				s.exnodes[key] = reps
			}
			s.mu.Unlock()
			return reps, nil
		}
		if err != nil && !errors.Is(err, ErrMiss) {
			return nil, err
		}
	}
	// Whole hierarchy missed: the view set has not been computed.
	agentAddr, ok := s.AgentFor(key.Dataset)
	if !ok || s.Generate == nil {
		return nil, fmt.Errorf("%w: %s", ErrMiss, key)
	}
	xml, err := s.Generate(ctx, agentAddr, key)
	if err != nil {
		return nil, fmt.Errorf("dvs: on-demand generation of %s: %w", key, err)
	}
	if err := s.Put(key, xml); err != nil {
		return nil, err
	}
	return [][]byte{xml}, nil
}

// --- wire protocol ---
//
//	GET <dataset> <viewset>            -> OK <n> then n x (<len>\n<xml>) | MISS
//	PUT <dataset> <viewset> <len>\n<xml> -> OK
//	REPLACE <dataset> <viewset> <len>\n<xml> -> OK   (drops prior replicas)
//	REGAGENT <dataset> <addr>          -> OK
//	AGENT <dataset>                    -> OK <addr> | MISS

// ListenAndServe starts the DVS on addr and returns the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.lis = l
	s.mu.Unlock()
	s.initMetrics()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go s.handle(c)
		}
	}()
	return l.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.lis != nil {
		return s.lis.Close()
	}
	return nil
}

func (s *Server) tracer() *obs.Tracer {
	if s.Tracer != nil {
		return s.Tracer
	}
	return obs.DefaultTracer()
}

func (s *Server) registry() *obs.Registry {
	if s.Obs != nil {
		return s.Obs
	}
	return obs.Default()
}

// initMetrics eagerly registers the overload families so /metrics shows
// them at zero on an idle directory.
func (s *Server) initMetrics() {
	s.metricsOnce.Do(func() {
		reg := s.registry()
		reg.Counter(obs.Label(obs.MDVSShed, "reason", overload.ReasonQueueFull))
		reg.Gauge(obs.MDVSInflight).Set(0)
		reg.Gauge(obs.MDVSQueueDepth).Set(0)
	})
}

// acquire runs one request through admission control, keeping the load
// gauges current. With Admission nil it still sheds requests whose
// propagated deadline budget is already spent.
func (s *Server) acquire(ctx context.Context) (func(), error) {
	if s.Admission == nil {
		if ctx.Err() != nil {
			return nil, &overload.ShedError{Reason: overload.ReasonDeadline}
		}
		return func() {}, nil
	}
	release, err := s.Admission.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	reg := s.registry()
	reg.Gauge(obs.MDVSInflight).Set(s.Admission.InFlight())
	reg.Gauge(obs.MDVSQueueDepth).Set(s.Admission.Queued())
	return func() {
		release()
		reg.Gauge(obs.MDVSInflight).Set(s.Admission.InFlight())
		reg.Gauge(obs.MDVSQueueDepth).Set(s.Admission.Queued())
	}, nil
}

// shed answers one request with ERR BUSY and records why. Callers close
// the connection afterwards: a shed PUT/REPLACE has an unread XML body
// on the wire, and dropping the connection is the only way to stay
// synchronized without reading bytes of a refused request.
func (s *Server) shed(bw *bufio.Writer, verb, reason string) {
	s.registry().Counter(obs.Label(obs.MDVSShed, "reason", reason)).Inc()
	obs.DefaultLogger().Warn(context.Background(), obs.EvShed,
		"component", "dvs", "reason", reason, "op", verb)
	fmt.Fprintf(bw, "ERR BUSY %s\n", reason)
}

func (s *Server) handle(c net.Conn) {
	defer c.Close()
	s.initMetrics()
	br := bufio.NewReaderSize(c, 64*1024)
	bw := bufio.NewWriterSize(c, 64*1024)
	for {
		line, err := br.ReadString('\n')
		if err != nil || len(line) > maxLine {
			return
		}
		// Strip the optional trailing tokens before the exact
		// argument-count matching below: trace= (emitted last) parents
		// this request's span under the calling client's, deadline=
		// bounds the request context with the client's remaining budget.
		// Token-less requests (pre-propagation clients) skip both.
		f, tc, traced := obs.StripTraceToken(strings.Fields(strings.TrimSpace(line)))
		f, budget, hasBudget := obs.StripDeadlineToken(f)
		verb := ""
		if len(f) > 0 {
			verb = f[0]
		}
		ctx := context.Background()
		var span *obs.Span
		if traced {
			ctx, span = s.tracer().StartSpan(obs.ContextWithRemote(ctx, tc), obs.SpanDVSServe)
			span.SetAttr("op", verb)
		}
		rctx, dcancel := obs.DeadlineContext(ctx, budget, hasBudget)
		var keep bool
		release, admitErr := s.acquire(rctx)
		if admitErr != nil {
			s.shed(bw, verb, overload.Reason(admitErr))
			keep = false
		} else {
			// CPU attribution: directory-service work profiles under
			// {class=dvs, verb}; no-op until -metrics-addr enables labels.
			lctx := prof.Begin2(rctx, prof.KeyClass, "dvs", prof.KeyVerb, verb)
			keep = s.dispatch(lctx, br, bw, f)
			prof.End(rctx)
			release()
		}
		dcancel()
		span.Finish()
		if !keep {
			bw.Flush()
			return
		}
		if bw.Flush() != nil {
			return
		}
	}
}

func (s *Server) dispatch(ctx context.Context, br *bufio.Reader, bw *bufio.Writer, f []string) bool {
	switch {
	case len(f) == 3 && f[0] == "GET":
		// Queries may recurse upstream; bound them. The span context rides
		// along so hierarchy forwarding re-propagates the same trace to the
		// parent DVS and to on-demand generation.
		timeout := s.Timeout
		if timeout == 0 {
			timeout = 30 * time.Second
		}
		ctx, cancel := context.WithTimeout(ctx, timeout)
		reps, err := s.Resolve(ctx, Key{Dataset: f[1], ViewSet: f[2]})
		cancel()
		switch {
		case errors.Is(err, ErrMiss):
			fmt.Fprintf(bw, "MISS\n")
		case err != nil:
			fmt.Fprintf(bw, "ERR %s\n", oneLine(err.Error()))
		default:
			fmt.Fprintf(bw, "OK %d\n", len(reps))
			for _, r := range reps {
				fmt.Fprintf(bw, "%d\n", len(r))
				bw.Write(r)
			}
		}
		return true
	case len(f) == 4 && (f[0] == "PUT" || f[0] == "REPLACE"):
		n, err := strconv.Atoi(f[3])
		if err != nil || n <= 0 || n > maxEntry {
			fmt.Fprintf(bw, "ERR bad length\n")
			return false
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return false
		}
		record := s.Put
		if f[0] == "REPLACE" {
			record = s.Replace
		}
		if err := record(Key{Dataset: f[1], ViewSet: f[2]}, body); err != nil {
			fmt.Fprintf(bw, "ERR %s\n", oneLine(err.Error()))
			return true
		}
		fmt.Fprintf(bw, "OK\n")
		return true
	case len(f) == 3 && f[0] == "REGAGENT":
		if err := s.RegisterAgent(f[1], f[2]); err != nil {
			fmt.Fprintf(bw, "ERR %s\n", oneLine(err.Error()))
			return true
		}
		fmt.Fprintf(bw, "OK\n")
		return true
	case len(f) == 2 && f[0] == "AGENT":
		if addr, ok := s.AgentFor(f[1]); ok {
			fmt.Fprintf(bw, "OK %s\n", addr)
		} else {
			fmt.Fprintf(bw, "MISS\n")
		}
		return true
	default:
		fmt.Fprintf(bw, "ERR bad request\n")
		return false
	}
}

func oneLine(s string) string { return strings.ReplaceAll(s, "\n", " ") }

// Client queries a DVS server.
type Client struct {
	Addr    string
	Dialer  Dialer
	Timeout time.Duration
	// Obs receives per-operation latency histograms and error counters
	// (dvs.op.*); nil records into obs.Default().
	Obs *obs.Registry
}

// lineSuffix returns the optional trailing request-line tokens
// (" deadline=<ms> trace=<tid>/<sid>") for ctx, or "" when propagation
// is off — request lines stay byte-identical to pre-propagation ones
// unless a deadline or trace is actually being carried.
func lineSuffix(ctx context.Context) string { return obs.LineTokens(ctx) }

// remoteErr classifies one "ERR ..." reply: a BUSY shed becomes the
// typed ErrBusy, anything else the generic remote error pre-overload
// servers already produced.
func remoteErr(f []string) error {
	if len(f) >= 2 && f[1] == "BUSY" {
		return fmt.Errorf("dvs: remote: %s: %w", strings.Join(f[2:], " "), ErrBusy)
	}
	return fmt.Errorf("dvs: remote: %s", strings.Join(f[1:], " "))
}

// observeOp records one client operation's latency and outcome.
func (c *Client) observeOp(op string, start time.Time, err error) {
	reg := c.Obs
	if reg == nil {
		reg = obs.Default()
	}
	reg.Histogram(obs.Label(obs.MDVSOpMs, "op", op), obs.LatencyBucketsMs...).
		Observe(float64(time.Since(start)) / 1e6)
	// A miss is an expected outcome (it triggers on-demand generation),
	// not an operational failure.
	if err != nil && !errors.Is(err, ErrMiss) {
		reg.Counter(obs.Label(obs.MDVSOpErrors, "op", op)).Inc()
	}
}

func (c *Client) dial() (net.Conn, error) {
	d := c.Dialer
	if d == nil {
		d = netDialer{}
	}
	conn, err := d.Dial(c.Addr)
	if err != nil {
		return nil, err
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	return conn, nil
}

// Get fetches all known exNode replicas for key. A pure miss returns
// ErrMiss.
func (c *Client) Get(ctx context.Context, key Key) (reps [][]byte, err error) {
	defer func(start time.Time) { c.observeOp("GET", start, err) }(time.Now())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	fmt.Fprintf(conn, "GET %s %s%s\n", key.Dataset, key.ViewSet, lineSuffix(ctx))
	br := bufio.NewReaderSize(conn, 64*1024)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProto, err)
	}
	f := strings.Fields(strings.TrimSpace(line))
	switch {
	case len(f) >= 1 && f[0] == "MISS":
		return nil, fmt.Errorf("%w: %s", ErrMiss, key)
	case len(f) >= 1 && f[0] == "ERR":
		return nil, remoteErr(f)
	case len(f) == 2 && f[0] == "OK":
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 0 || n > 1024 {
			return nil, fmt.Errorf("%w: bad replica count", ErrProto)
		}
		out := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			szLine, err := br.ReadString('\n')
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrProto, err)
			}
			sz, err := strconv.Atoi(strings.TrimSpace(szLine))
			if err != nil || sz <= 0 || sz > maxEntry {
				return nil, fmt.Errorf("%w: bad entry size", ErrProto)
			}
			body := make([]byte, sz)
			if _, err := io.ReadFull(br, body); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrProto, err)
			}
			out = append(out, body)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: response %q", ErrProto, line)
	}
}

// Put registers an exNode replica for key.
func (c *Client) Put(ctx context.Context, key Key, exnodeXML []byte) error {
	return c.record(ctx, "PUT", key, exnodeXML)
}

// Replace overwrites every recorded exNode replica for key with one
// document (see Server.Replace).
func (c *Client) Replace(ctx context.Context, key Key, exnodeXML []byte) error {
	return c.record(ctx, "REPLACE", key, exnodeXML)
}

func (c *Client) record(ctx context.Context, verb string, key Key, exnodeXML []byte) (err error) {
	defer func(start time.Time) { c.observeOp(verb, start, err) }(time.Now())
	conn, err := c.dial()
	if err != nil {
		return err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	fmt.Fprintf(conn, "%s %s %s %d%s\n", verb, key.Dataset, key.ViewSet, len(exnodeXML), lineSuffix(ctx))
	if _, err := conn.Write(exnodeXML); err != nil {
		return err
	}
	return expectOK(conn)
}

// RegisterAgent records the server agent for a dataset.
func (c *Client) RegisterAgent(ctx context.Context, dataset, agentAddr string) (err error) {
	defer func(start time.Time) { c.observeOp("REGAGENT", start, err) }(time.Now())
	conn, err := c.dial()
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Fprintf(conn, "REGAGENT %s %s%s\n", dataset, agentAddr, lineSuffix(ctx))
	return expectOK(conn)
}

// AgentFor queries the server-agent table.
func (c *Client) AgentFor(ctx context.Context, dataset string) (addr string, err error) {
	defer func(start time.Time) { c.observeOp("AGENT", start, err) }(time.Now())
	conn, err := c.dial()
	if err != nil {
		return "", err
	}
	defer conn.Close()
	fmt.Fprintf(conn, "AGENT %s%s\n", dataset, lineSuffix(ctx))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrProto, err)
	}
	f := strings.Fields(strings.TrimSpace(line))
	if len(f) == 2 && f[0] == "OK" {
		return f[1], nil
	}
	if len(f) >= 1 && f[0] == "MISS" {
		return "", ErrMiss
	}
	if len(f) >= 1 && f[0] == "ERR" {
		return "", remoteErr(f)
	}
	return "", fmt.Errorf("%w: response %q", ErrProto, line)
}

func expectOK(conn net.Conn) error {
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProto, err)
	}
	line = strings.TrimSpace(line)
	if line != "OK" && !strings.HasPrefix(line, "OK ") {
		if f := strings.Fields(line); len(f) >= 1 && f[0] == "ERR" {
			return remoteErr(f)
		}
		return fmt.Errorf("dvs: remote: %s", line)
	}
	return nil
}
