package lonviz

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/netsim"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
	"lonviz/internal/obs/slo"
)

// TestFlightRecorderCaptureEndToEnd is the acceptance test for the
// flight recorder: a depot turns slow under chaos faults, the critical
// depot-latency SLO fires, and the recorder automatically captures
// exactly one forensic bundle within the cooldown window. The bundle is
// then pulled entirely through the operator surface (/debug/capture) and
// must hold a non-empty goroutine dump, a CPU profile whose string table
// carries the hot-path `class` labels, and the retained TSDB window.
func TestFlightRecorderCaptureEndToEnd(t *testing.T) {
	params := lightfield.ScaledParams(45, 2, 6) // 2x4 sets

	var addrs []string
	for i := 0; i < 2; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, addr)
	}

	dvsServer := dvs.NewServer("")
	dvsAddr, err := dvsServer.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dvsServer.Close() })
	dvsClient := &dvs.Client{Addr: dvsAddr}

	gen, err := lightfield.NewProceduralGenerator(params, 33)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
		Dataset:  "neghip",
		Gen:      gen,
		Depots:   addrs,
		DVS:      dvsClient,
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sa.Close() })
	if _, err := sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The stack as -metrics-addr wires it, with a tight sampling interval,
	// a low-threshold critical rule, a sub-second capture profile, and a
	// cooldown far longer than the test — so a flapping alert can record
	// at most one bundle.
	rules := fmt.Sprintf(`{"rules": [{
		"name": "depot-latency-capture-e2e",
		"severity": "critical",
		"kind": "latency_quantile",
		"metric": %q,
		"quantile": 0.9,
		"threshold_ms": 40,
		"window": "2s",
		"for": "50ms",
		"clear_after": "200ms",
		"min_count": 3
	}]}`, obs.MIBPDepotMs)
	rulesPath := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(rulesPath, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	stack, err := slo.Start(slo.Options{
		Addr:              "127.0.0.1:0",
		Registry:          reg,
		Tracer:            obs.NewTracer(1024),
		Logger:            obs.NewLogger(io.Discard, 256),
		RulesPath:         rulesPath,
		SampleInterval:    25 * time.Millisecond,
		CaptureCPUProfile: 400 * time.Millisecond,
		CaptureCooldown:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stack.Close(context.Background()) })
	stack.MarkReady()
	base := "http://" + stack.Addr()

	// Labeled CPU load for the whole incident: the capture's profile
	// window must observe samples tagged by the prof wrappers. The browse
	// loop below is mostly network wait, so these spinners guarantee the
	// statistical CPU sampler sees labeled on-CPU time.
	var spinStop atomic.Bool
	var spinners sync.WaitGroup
	for i := 0; i < 2; i++ {
		spinners.Add(1)
		go func() {
			defer spinners.Done()
			prof.Do(context.Background(), func(context.Context) {
				var acc uint64
				for !spinStop.Load() {
					for j := 0; j < 1<<14; j++ {
						acc += uint64(j) * 2654435761
					}
				}
				_ = acc
			}, prof.KeyClass, "e2e_load")
		}()
	}
	t.Cleanup(func() {
		spinStop.Store(true)
		spinners.Wait()
	})

	// The chaos fault: every connection to depot 0 eats a latency spike.
	fd := netsim.NewFaultDialer(nil, 9431)
	fd.SetFault(addrs[0], netsim.FaultProfile{SpikeProb: 1, Spike: 150 * time.Millisecond})

	rnd := rand.New(rand.NewSource(19))
	ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset:     "neghip",
		Params:      params,
		DVS:         dvsClient,
		Dialer:      fd,
		CacheBytes:  1 << 10,
		Retries:     4,
		Parallelism: 1,
		// Serial transport so every browse op pays the per-connection
		// spike (see TestSLOAlertDrivenRepairEndToEnd for the rationale).
		PipelineWindow: -1,
		Obs:            reg,
		Rand:           rand.New(rand.NewSource(23)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	sets := params.AllViewSets()
	browse := func() {
		id := sets[rnd.Intn(len(sets))]
		if _, _, err := ca.GetViewSet(context.Background(), id); err != nil {
			t.Fatalf("GetViewSet(%v): %v", id, err)
		}
	}

	// Stage 1: browse against the slow depot until the critical SLO fires.
	type alertsDoc struct {
		Firing int         `json:"firing"`
		Alerts []slo.Alert `json:"alerts"`
	}
	deadline := time.Now().Add(20 * time.Second)
	fired := false
	for !fired {
		if time.Now().After(deadline) {
			t.Fatal("depot-latency alert never fired")
		}
		browse()
		_, body := sloHTTPGet(t, base+"/debug/alerts")
		var doc alertsDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("/debug/alerts unparseable: %v\n%s", err, body)
		}
		for _, a := range doc.Alerts {
			if a.Rule == "depot-latency-capture-e2e" && a.State == slo.StateFiring {
				fired = true
			}
		}
	}

	// Stage 2: the firing transition triggered an automatic capture; the
	// bundle lands once its CPU-profile window elapses. Keep browsing so
	// the profiled window is full of real labeled traffic too.
	type indexDoc struct {
		Bundles []struct {
			ID      string         `json:"id"`
			Trigger string         `json:"trigger"`
			Files   map[string]int `json:"files"`
		} `json:"bundles"`
	}
	fetchIndex := func() indexDoc {
		_, body := sloHTTPGet(t, base+"/debug/capture")
		var doc indexDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("/debug/capture unparseable: %v\n%s", err, body)
		}
		return doc
	}
	deadline = time.Now().Add(20 * time.Second)
	var idx indexDoc
	for len(idx.Bundles) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no capture bundle appeared after the alert fired")
		}
		browse()
		idx = fetchIndex()
	}
	bundle := idx.Bundles[0]
	if bundle.Trigger != "alert:depot-latency-capture-e2e" {
		t.Fatalf("bundle trigger = %q, want alert:depot-latency-capture-e2e", bundle.Trigger)
	}

	// Stage 3: exactly one bundle within the cooldown — keep the fault and
	// the browse traffic running (the alert stays hot or re-fires) and the
	// minute-long cooldown must suppress any second capture.
	settle := time.Now().Add(1 * time.Second)
	for time.Now().Before(settle) {
		browse()
	}
	if got := fetchIndex(); len(got.Bundles) != 1 {
		t.Fatalf("cooldown violated: %d bundles within the window, want exactly 1", len(got.Bundles))
	}

	// Stage 4: pull the forensics through the operator surface.
	code, goroutines := sloHTTPGet(t, base+"/debug/capture/"+bundle.ID+"/goroutines.txt")
	if code != http.StatusOK || len(goroutines) == 0 {
		t.Fatalf("goroutines.txt: status %d, %d bytes", code, len(goroutines))
	}
	if !strings.Contains(string(goroutines), "goroutine profile") {
		t.Error("goroutines.txt does not look like a goroutine profile")
	}

	code, cpu := sloHTTPGet(t, base+"/debug/capture/"+bundle.ID+"/cpu.pprof")
	if code != http.StatusOK || len(cpu) == 0 {
		t.Fatalf("cpu.pprof: status %d, %d bytes", code, len(cpu))
	}
	zr, err := gzip.NewReader(bytes.NewReader(cpu))
	if err != nil {
		t.Fatalf("cpu.pprof is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip cpu.pprof: %v", err)
	}
	if !bytes.Contains(raw, []byte(prof.KeyClass)) {
		t.Error("cpu.pprof string table has no `class` label key")
	}
	if !bytes.Contains(raw, []byte("e2e_load")) && !bytes.Contains(raw, []byte("ibp_client")) {
		t.Error("cpu.pprof carries neither the e2e_load nor the ibp_client class value")
	}

	code, tsdbJSON := sloHTTPGet(t, base+"/debug/capture/"+bundle.ID+"/tsdb.json")
	if code != http.StatusOK {
		t.Fatalf("tsdb.json: status %d", code)
	}
	var window map[string][]obs.Point
	if err := json.Unmarshal(tsdbJSON, &window); err != nil {
		t.Fatalf("tsdb.json unparseable: %v", err)
	}
	if len(window) == 0 {
		t.Error("tsdb.json window is empty")
	}
	// The window must include the runtime families the harvester feeds on
	// every sampling tick.
	if len(window[obs.MRuntimeGoroutines]) == 0 {
		t.Errorf("tsdb.json lacks %s; %d series retained", obs.MRuntimeGoroutines, len(window))
	}

	// Stage 5: the capture accounting on /metrics matches what happened.
	_, metricsBody := sloHTTPGet(t, base+"/metrics")
	var snap map[string]any
	if err := json.Unmarshal(metricsBody, &snap); err != nil {
		t.Fatalf("/metrics unparseable: %v", err)
	}
	if v, _ := snap[obs.Label(obs.MCaptureBundles, "trigger", "alert")].(float64); v != 1 {
		t.Errorf("capture.bundles{trigger=alert} = %v, want 1", v)
	}
}
