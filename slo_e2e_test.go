package lonviz

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/netsim"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
	"lonviz/internal/steward"
)

// sloHTTPGet fetches a stack endpoint and returns status + body.
func sloHTTPGet(t *testing.T, rawURL string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestSLOAlertDrivenRepairEndToEnd is the acceptance test for the
// alert-driven control loop: a depot turns slow (latency spikes on every
// connection) and also holds an at-rest corrupt replica of a
// steward-managed object. Browsing traffic feeds the TSDB, the
// depot-latency SLO fires, /healthz degrades naming the rule, the
// steward's alert subscription runs a targeted payload audit of the
// suspect depot — repairing the corruption long before its hourly scan
// would — and once the latency fault lifts the alert resolves and
// /healthz recovers. Every stage is asserted from the operator surface:
// /debug/alerts, /debug/tsdb, and the structured event log.
func TestSLOAlertDrivenRepairEndToEnd(t *testing.T) {
	params := lightfield.ScaledParams(45, 2, 6) // 2x4 sets

	// Three depots: 0 will turn slow and holds the corrupt replica, 1 is
	// healthy, 2 is the repair spare.
	var addrs []string
	for i := 0; i < 3; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, addr)
	}

	dvsServer := dvs.NewServer("")
	dvsAddr, err := dvsServer.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dvsServer.Close() })
	dvsClient := &dvs.Client{Addr: dvsAddr}

	// Publish the browsable database across depots 0 and 1.
	gen, err := lightfield.NewProceduralGenerator(params, 31)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
		Dataset:  "neghip",
		Gen:      gen,
		Depots:   []string{addrs[0], addrs[1]},
		DVS:      dvsClient,
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sa.Close() })
	if _, err := sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The steward-managed object: replica on depot 0 holds flipped bytes,
	// so only a payload audit can find the damage.
	good := make([]byte, 8*1024)
	rnd := rand.New(rand.NewSource(7))
	rnd.Read(good)
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	storeReplica := func(addr string, payload []byte) exnode.Replica {
		cl := &ibp.Client{Addr: addr}
		caps, err := cl.Allocate(context.Background(), int64(len(payload)), time.Hour, ibp.Stable)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Store(context.Background(), caps.Write, 0, payload); err != nil {
			t.Fatal(err)
		}
		return exnode.Replica{Depot: addr, ReadCap: caps.Read, ManageCap: caps.Manage}
	}
	ex := &exnode.ExNode{
		Name:   "slo-e2e-obj",
		Length: int64(len(good)),
		Extents: []exnode.Extent{{
			Offset:   0,
			Length:   int64(len(good)),
			Checksum: exnode.ChecksumOf(good),
			Replicas: []exnode.Replica{storeReplica(addrs[0], bad), storeReplica(addrs[1], good)},
		}},
	}

	// The observability stack, exactly as -metrics-addr wires it, with a
	// tight sampling interval and a low-threshold critical rule so real
	// wall-clock hysteresis plays out in milliseconds.
	rules := fmt.Sprintf(`{"rules": [{
		"name": "depot-latency-e2e",
		"severity": "critical",
		"kind": "latency_quantile",
		"metric": %q,
		"quantile": 0.9,
		"threshold_ms": 40,
		"window": "2s",
		"for": "50ms",
		"clear_after": "200ms",
		"min_count": 3
	}]}`, obs.MIBPDepotMs)
	rulesPath := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(rulesPath, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1024)
	logger := obs.NewLogger(io.Discard, 256)
	stack, err := slo.Start(slo.Options{
		Addr:           "127.0.0.1:0",
		Registry:       reg,
		Tracer:         tracer,
		RulesPath:      rulesPath,
		SampleInterval: 25 * time.Millisecond,
		Logger:         logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stack.Close(context.Background()) })
	stack.MarkReady()
	base := "http://" + stack.Addr()

	// The steward with an hour-long scan interval: only the alert bridge
	// can make it act within this test's lifetime. Its own depot clients
	// dial plain TCP (a repair agent co-located with the depots), so the
	// latency fault below slows browsers, not the repair.
	stw := steward.New(steward.Config{
		ReplicationTarget: 2,
		ScanInterval:      time.Hour,
		VerifyPerCycle:    -1,
		Obs:               obs.NewRegistry(),
		Locate: func(ctx context.Context, n int, minFree int64, exclude map[string]bool) ([]string, error) {
			return []string{addrs[2]}, nil
		},
	})
	if err := stw.Adopt("slo-e2e-obj", ex); err != nil {
		t.Fatal(err)
	}
	stack.Subscribe(steward.AlertTrigger(stw))
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	runDone := make(chan error, 1)
	go func() { runDone <- stw.Run(runCtx) }()

	// The fault: every connection to depot 0 eats a 150ms latency spike.
	fd := netsim.NewFaultDialer(nil, 4245)
	fd.SetFault(addrs[0], netsim.FaultProfile{SpikeProb: 1, Spike: 150 * time.Millisecond})

	ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset:     "neghip",
		Params:      params,
		DVS:         dvsClient,
		Dialer:      fd,
		CacheBytes:  1 << 10, // tiny: every browse refetches from depots
		Retries:     4,
		Parallelism: 1,
		// Serial transport on purpose: the injected fault is a
		// per-connection latency spike, which a persistent pipelined
		// connection pays exactly once at dial time — the following
		// thousands of fast per-op samples would drown the rule's p90.
		// Serial mode dials per operation, so every browse round trip
		// eats the spike, which is the slow-depot signal this rule (and
		// this test) is about.
		PipelineWindow: -1,
		Obs:            reg,
		Rand:           rand.New(rand.NewSource(17)),
		// No ReplicaBias here on purpose: the bias would steer the browse
		// traffic off the slow depot and starve the rule's window. The
		// bias path has its own test (TestDownloadPreferOrdersReplicas).
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	sets := params.AllViewSets()
	browse := func() {
		id := sets[rnd.Intn(len(sets))]
		if _, _, err := ca.GetViewSet(context.Background(), id); err != nil {
			t.Fatalf("GetViewSet(%v): %v", id, err)
		}
	}

	type alertsDoc struct {
		Firing int         `json:"firing"`
		Alerts []slo.Alert `json:"alerts"`
	}
	fetchAlerts := func() alertsDoc {
		_, body := sloHTTPGet(t, base+"/debug/alerts")
		var doc alertsDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("/debug/alerts unparseable: %v\n%s", err, body)
		}
		return doc
	}

	// Stage 1: browse against the slow depot until the SLO fires.
	var firing *slo.Alert
	deadline := time.Now().Add(20 * time.Second)
	for firing == nil {
		if time.Now().After(deadline) {
			_, idx := sloHTTPGet(t, base+"/debug/tsdb")
			t.Fatalf("depot-latency alert never fired; alerts: %+v\ntsdb index: %s", fetchAlerts(), idx)
		}
		browse()
		doc := fetchAlerts()
		for i, a := range doc.Alerts {
			if a.Rule == "depot-latency-e2e" && a.State == slo.StateFiring {
				firing = &doc.Alerts[i]
			}
		}
	}
	if firing.Labels["depot"] != addrs[0] {
		t.Fatalf("alert labels = %v, want depot=%s", firing.Labels, addrs[0])
	}
	if firing.Severity != slo.SeverityCritical {
		t.Fatalf("alert severity = %q, want critical", firing.Severity)
	}

	// Stage 2: /healthz degrades to 503 and names the firing rule.
	code, body := sloHTTPGet(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d during critical alert, want 503\n%s", code, body)
	}
	if !strings.Contains(string(body), "depot-latency-e2e") {
		t.Fatalf("/healthz reason does not name the rule:\n%s", body)
	}

	// Stage 3: the alert subscription audits the suspect depot and
	// repairs the corrupt replica — with the periodic scan an hour away.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := stw.Stats()
		if st.AlertAudits >= 1 && st.RepairsSucceeded >= 1 {
			if st.VerifyFailures < 1 {
				t.Fatalf("audit repaired without a payload verify failure: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alert-triggered audit never repaired: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cur := stw.ExNode("slo-e2e-obj")
	for _, d := range cur.Depots() {
		if d == addrs[0] {
			t.Error("corrupt replica on the suspect depot survived the targeted audit")
		}
	}
	got, _, err := lors.Download(context.Background(), cur, lors.DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, good) {
		t.Error("post-repair download does not match the original payload")
	}

	// Stage 4: the TSDB retained the story — the suspect depot's latency
	// series has history and a breached p99 over the firing window.
	series := obs.Label(obs.MIBPDepotMs, "depot", addrs[0])
	q := url.Values{"name": {series}, "since": {"30s"}, "agg": {"raw"}}
	_, body = sloHTTPGet(t, base+"/debug/tsdb?"+q.Encode())
	var rawResp struct {
		Points []struct {
			V float64 `json:"v"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &rawResp); err != nil {
		t.Fatalf("/debug/tsdb unparseable: %v\n%s", err, body)
	}
	if len(rawResp.Points) < 2 {
		t.Fatalf("/debug/tsdb raw query returned %d points, want >= 2", len(rawResp.Points))
	}
	q.Set("agg", "p99")
	q.Set("window", "2s")
	_, body = sloHTTPGet(t, base+"/debug/tsdb?"+q.Encode())
	var qResp struct {
		Points []struct {
			V float64 `json:"v"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &qResp); err != nil {
		t.Fatalf("/debug/tsdb p99 unparseable: %v\n%s", err, body)
	}
	var maxP99 float64
	for _, p := range qResp.Points {
		if p.V > maxP99 {
			maxP99 = p.V
		}
	}
	if maxP99 < 40 {
		t.Errorf("retained p99 peak = %.1fms, expected the 40ms threshold breached\nbody: %s", maxP99, body)
	}

	// Stage 5: lift the fault and browse clean traffic until the alert
	// resolves and /healthz recovers.
	fd.SetFault(addrs[0], netsim.FaultProfile{})
	deadline = time.Now().Add(20 * time.Second)
	for {
		browse()
		doc := fetchAlerts()
		if doc.Firing == 0 {
			resolved := false
			for _, a := range doc.Alerts {
				if a.Rule == "depot-latency-e2e" && a.State == slo.StateResolved {
					resolved = true
				}
			}
			if resolved {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("alert never resolved after the fault lifted; alerts: %+v", doc)
		}
	}
	code, body = sloHTTPGet(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d after resolution, want 200\n%s", code, body)
	}

	// Stage 6: the structured event log carries the full transition
	// history, trace-correlated to the evaluation spans.
	var sawFiring, sawResolved bool
	for _, ev := range logger.Events() {
		if ev.Name != obs.EvSLOAlert {
			continue
		}
		fields := map[string]string{}
		for _, f := range ev.Fields {
			fields[f.Key] = f.Value
		}
		if fields["rule"] != "depot-latency-e2e" {
			continue
		}
		switch fields["state"] {
		case slo.StateFiring:
			sawFiring = true
			if ev.TraceID == 0 {
				t.Error("firing slo.alert event carries no trace ID")
			}
		case slo.StateResolved:
			sawResolved = true
		}
	}
	if !sawFiring || !sawResolved {
		t.Errorf("event log transitions: firing=%v resolved=%v, want both", sawFiring, sawResolved)
	}
	var sawTrigger bool
	for _, ev := range obs.DefaultLogger().Events() {
		if ev.Name == obs.EvStewardAlertTrigger {
			sawTrigger = true
		}
	}
	if !sawTrigger {
		t.Error("no steward.alert_trigger event in the log")
	}

	cancelRun()
	if err := <-runDone; err != nil && err != context.Canceled {
		t.Fatalf("steward Run: %v", err)
	}
}
