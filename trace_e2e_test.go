package lonviz

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/netsim"
	"lonviz/internal/obs"
)

// TestEndToEndTraceAcrossProcesses is the tentpole acceptance test: one
// lfbrowse-style frame fetch runs through client agent -> LoRS -> two
// depots while one depot corrupts every payload, with trace propagation
// on. Each "process" keeps its own tracer (served over HTTP like
// -metrics-addr would), and the collector must reassemble one tree in
// which client-side and depot-side spans share a single trace ID — with
// the failover retry visible as a failed lors.attempt beside the
// successful one.
func TestEndToEndTraceAcrossProcesses(t *testing.T) {
	obs.SetPropagation(true)
	defer obs.SetPropagation(false)

	params := lightfield.ScaledParams(45, 2, 6) // 2x4 sets

	// Two depots, each with a private tracer served the way a real depotd
	// serves -metrics-addr.
	type depotProc struct {
		addr     string
		tracer   *obs.Tracer
		endpoint string
	}
	var depots []depotProc
	for i := 0; i < 2; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		tr := obs.NewTracer(256)
		srv.Tracer = tr
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		hs := httptest.NewServer(obs.NewMux(obs.NewRegistry(), tr))
		t.Cleanup(hs.Close)
		depots = append(depots, depotProc{addr: addr, tracer: tr, endpoint: hs.URL})
	}

	// The DVS is a third process with its own tracer.
	dvsServer := dvs.NewServer("")
	dvsTracer := obs.NewTracer(256)
	dvsServer.Tracer = dvsTracer
	dvsAddr, err := dvsServer.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dvsServer.Close() })
	dvsHTTP := httptest.NewServer(obs.NewMux(obs.NewRegistry(), dvsTracer))
	t.Cleanup(dvsHTTP.Close)
	dvsClient := &dvs.Client{Addr: dvsAddr}

	// Publish with Replicas=2 so every extent lives on both depots and a
	// failed attempt always has somewhere to fail over to.
	gen, err := lightfield.NewProceduralGenerator(params, 77)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
		Dataset:  "neghip",
		Gen:      gen,
		Depots:   []string{depots[0].addr, depots[1].addr},
		DVS:      dvsClient,
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sa.Close() })
	if _, err := sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The fault: depot 0 corrupts every payload in transit, so any attempt
	// against it fails the checksum and fails over to depot 1.
	fd := netsim.NewFaultDialer(nil, 4244)
	fd.SetFault(depots[0].addr, netsim.FaultProfile{CorruptProb: 1})

	clientTracer := obs.NewTracer(1024)
	ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset:     "neghip",
		Params:      params,
		DVS:         dvsClient,
		Dialer:      fd,
		CacheBytes:  1 << 22,
		Retries:     4,
		Parallelism: 1,
		Tracer:      clientTracer,
		Rand:        rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	// Browse until some fetch's trace contains a failed attempt: with a
	// 100%-corrupting replica holding half the stripes, the first fetch
	// that touches depot 0 produces one.
	var traceID uint64
	for _, id := range params.AllViewSets() {
		if _, _, err := ca.GetViewSet(context.Background(), id); err != nil {
			t.Fatalf("GetViewSet(%v): %v", id, err)
		}
		for _, s := range clientTracer.Completed() {
			if s.Name == obs.SpanLorsAttempt && s.Attrs["err"] != "" {
				traceID = s.TraceID
			}
		}
		if traceID != 0 {
			break
		}
	}
	if traceID == 0 {
		t.Fatal("no fetch recorded a failed lors.attempt despite a fully corrupting depot")
	}

	// The merge: pull the remote halves exactly as `lfbrowse -trace-peers`
	// does and reassemble the end-to-end tree.
	col := &obs.Collector{
		Local: clientTracer,
		Peers: []string{depots[0].endpoint, depots[1].endpoint, dvsHTTP.URL},
	}
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	spans, errs := col.Collect(cctx, traceID)
	if len(errs) != 0 {
		t.Fatalf("collect errors: %v", errs)
	}
	trees := obs.BuildTrees(spans)
	if len(trees) != 1 {
		t.Fatalf("merged %d trees for one trace ID, want 1", len(trees))
	}
	tree := trees[0]
	if tree.TraceID != traceID {
		t.Fatalf("tree trace = %x, want %x", tree.TraceID, traceID)
	}

	var (
		haveRoot, haveExtent                   bool
		failedAttempts, okAttempts, depotServe int
		dvsServe                               int
		sources                                = map[string]bool{}
	)
	for _, s := range tree.Spans {
		if s.TraceID != traceID {
			t.Fatalf("span %q carries trace %x, want %x", s.Name, s.TraceID, traceID)
		}
		sources[s.Source] = true
		switch s.Name {
		case obs.SpanGetViewSet:
			haveRoot = true
		case obs.SpanLorsExtent:
			haveExtent = true
		case obs.SpanLorsAttempt:
			if s.Attrs["err"] != "" {
				failedAttempts++
			} else {
				okAttempts++
			}
		case obs.SpanIBPServe:
			depotServe++
			if !s.Remote {
				t.Errorf("depot serve span not remote-parented: %+v", s)
			}
		case obs.SpanDVSServe:
			dvsServe++
		}
	}
	if !haveRoot || !haveExtent {
		t.Errorf("client-side spans missing: root=%v extent=%v", haveRoot, haveExtent)
	}
	if failedAttempts == 0 {
		t.Error("merged tree shows no failed attempt — the failover retry is invisible")
	}
	if okAttempts == 0 {
		t.Error("merged tree shows no successful attempt")
	}
	if depotServe == 0 {
		t.Error("merged tree has no depot-side ibp.serve spans")
	}
	if dvsServe == 0 {
		t.Error("merged tree has no DVS-side serve span")
	}
	if !sources["local"] {
		t.Error("no client-side (local) spans in the merge")
	}
	remoteSources := 0
	for src := range sources {
		if src != "local" && src != "" {
			remoteSources++
		}
	}
	if remoteSources == 0 {
		t.Error("no remote-sourced spans in the merge")
	}

	// The rendered tree must interleave both sides under one header.
	var sb strings.Builder
	tree.Render(&sb)
	out := sb.String()
	for _, want := range []string{obs.SpanGetViewSet, obs.SpanIBPServe, obs.SpanLorsAttempt, "@http://"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
}
