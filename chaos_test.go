package lonviz

import (
	"bytes"
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/lbone"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/netsim"
	"lonviz/internal/steward"
)

// chaosRig is an in-process deployment for fault-injection soaks: three
// WAN depots, two LAN depots, a DVS, and a server agent that has published
// a tiny procedural light-field database with every extent on two distinct
// depots.
type chaosRig struct {
	params    lightfield.Params
	wanDepots []string
	lanDepots []string
	dvsClient *dvs.Client
	reference map[lightfield.ViewSetID][]byte
}

func newChaosRig(t *testing.T) *chaosRig {
	t.Helper()
	r := &chaosRig{params: lightfield.ScaledParams(45, 2, 6)} // 2x4 sets
	startDepot := func() string {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return addr
	}
	for i := 0; i < 3; i++ {
		r.wanDepots = append(r.wanDepots, startDepot())
	}
	for i := 0; i < 2; i++ {
		r.lanDepots = append(r.lanDepots, startDepot())
	}

	dvsServer := dvs.NewServer("")
	dvsAddr, err := dvsServer.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dvsServer.Close() })
	r.dvsClient = &dvs.Client{Addr: dvsAddr}

	gen, err := lightfield.NewProceduralGenerator(r.params, 77)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
		Dataset:  "neghip",
		Gen:      gen,
		Depots:   r.wanDepots,
		DVS:      r.dvsClient,
		Replicas: 2, // every extent survives one bad depot
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sa.Close() })
	published, err := sa.PrecomputeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(published) != r.params.NumViewSets() {
		t.Fatalf("published %d of %d view sets", len(published), r.params.NumViewSets())
	}

	// Record the ground-truth frame bytes over a clean connection; every
	// chaos-phase access is checked against these.
	clean, err := agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset:    "neghip",
		Params:     r.params,
		DVS:        r.dvsClient,
		CacheBytes: 1 << 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	r.reference = make(map[lightfield.ViewSetID][]byte)
	for _, id := range r.params.AllViewSets() {
		frame, _, err := clean.GetViewSet(context.Background(), id)
		if err != nil {
			t.Fatalf("clean fetch of %v: %v", id, err)
		}
		if vs, err := lightfield.DecodeViewSet(frame, r.params); err != nil || vs.ID != id {
			t.Fatalf("clean frame for %v does not decode: %v", id, err)
		}
		r.reference[id] = frame
	}
	return r
}

// browseAll fetches every view set once (dropping the frame cache after
// each access so the next pass hits the network again) and fails the test
// on any error or any byte deviating from the precomputed reference — the
// "every GetViewSet returns checksum-clean bytes" acceptance bar.
func (r *chaosRig) browseAll(t *testing.T, ca *agent.ClientAgent, phase string) {
	t.Helper()
	for _, id := range r.params.AllViewSets() {
		frame, _, err := ca.GetViewSet(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: GetViewSet(%v): %v", phase, id, err)
		}
		if !bytes.Equal(frame, r.reference[id]) {
			t.Fatalf("%s: GetViewSet(%v) returned corrupted bytes", phase, id)
		}
		ca.DropCached(id)
	}
}

// TestChaosBrowseUnderFaults drives the full browsing stack while the
// fault layer degrades the WAN: one depot silently corrupts payloads and
// another flaps (dies, gets circuit-broken, and comes back). The client
// must never surface corrupt bytes, must record the failovers it made, and
// must send zero requests to a circuit-open depot for the whole cooldown.
func TestChaosBrowseUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak; run without -short")
	}
	r := newChaosRig(t)
	flappy, corrupting, clean := r.wanDepots[0], r.wanDepots[1], r.wanDepots[2]
	_ = clean

	fd := netsim.NewFaultDialer(nil, 4242)
	// clockSkew shifts the breaker's clock so cooldown expiry is a test
	// decision, not a sleep. Atomic because prestage workers read the
	// clock concurrently.
	var clockSkew atomic.Int64
	health := lors.NewHealthTracker(lors.HealthConfig{
		FailureThreshold: 3,
		Cooldown:         time.Hour,
		Now:              func() time.Time { return time.Now().Add(time.Duration(clockSkew.Load())) },
	})

	newAgent := func(lan []string) *agent.ClientAgent {
		ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
			Dataset:    "neghip",
			Params:     r.params,
			DVS:        r.dvsClient,
			Dialer:     fd,
			CacheBytes: 1 << 22,
			LANDepots:  lan,
			Health:     health,
			Retries:    4,
			// The fault injector poisons the first byte after the first
			// newline of each connection — the payload on a serial
			// connection, but the tagged response framing on a pipelined
			// one (where corruption surfaces as a broken pipe, covered by
			// the ibp pipe tests). Pin serial transport so this test keeps
			// proving the CHECKSUM layer catches silent payload rot.
			PipelineWindow: -1,
			Rand:           rand.New(rand.NewSource(99)),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ca.Close)
		return ca
	}

	// Phase 1 — hard corruption: every connection to the corrupting depot
	// flips a payload byte. Each extent has a replica elsewhere, so every
	// access must fail over to clean bytes and the checksum layer must be
	// what caught it.
	fd.SetFault(corrupting, netsim.FaultProfile{CorruptProb: 1})
	ca := newAgent(r.lanDepots)
	prestageDone, err := ca.StartPrestaging(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r.browseAll(t, ca, "hard corruption")
	st := ca.Stats()
	if st.ChecksumErrors == 0 {
		t.Error("no checksum errors recorded while a depot corrupted every payload")
	}
	if st.FailedAttempts == 0 {
		t.Error("no failed attempts recorded while a depot corrupted every payload")
	}

	// Phase 2 — background chaos: corruption drops to 10% and the stack
	// keeps browsing (prestaging is still running throughout) with
	// occasional latency spikes on the clean depot.
	fd.SetFault(corrupting, netsim.FaultProfile{CorruptProb: 0.1})
	fd.SetFault(clean, netsim.FaultProfile{SpikeProb: 0.2, Spike: 2 * time.Millisecond})
	for pass := 0; pass < 3; pass++ {
		r.browseAll(t, ca, "10% corruption")
	}

	// Let prestaging finish before the flap phase so its transfers cannot
	// blur the zero-dials assertion below.
	select {
	case <-prestageDone:
	case <-time.After(60 * time.Second):
		t.Fatal("prestaging never finished")
	}
	if ca.StagedCount() == 0 {
		t.Error("prestaging staged nothing despite a corrupting depot")
	}

	// Phase 3 — the flap: the flappy depot dies. A WAN-only agent (no LAN
	// staging, shared breaker) keeps browsing; failures to the dead depot
	// must open its circuit.
	fd.Kill(flappy)
	wan := newAgent(nil)
	for i := 0; !health.Open(flappy); i++ {
		if i >= 50 {
			t.Fatal("50 passes against a dead depot never opened its circuit")
		}
		r.browseAll(t, wan, "depot down")
	}
	if fd.Refused(flappy) == 0 {
		t.Error("dead depot recorded no refused dials")
	}

	// Phase 4 — cooldown: with the circuit open, whole browsing passes
	// (both agents) must send zero requests to the flappy depot.
	dialsBefore := fd.Dials(flappy)
	for pass := 0; pass < 3; pass++ {
		r.browseAll(t, wan, "cooldown")
		r.browseAll(t, ca, "cooldown")
	}
	if d := fd.Dials(flappy); d != dialsBefore {
		t.Errorf("circuit-open depot received %d dials during cooldown", d-dialsBefore)
	}

	// Phase 5 — recovery: the depot comes back and the cooldown lapses;
	// the half-open probe succeeds and the depot serves traffic again.
	fd.Revive(flappy)
	clockSkew.Store(int64(2 * time.Hour))
	if !health.Allow(flappy) {
		t.Fatal("cooldown expiry did not re-admit the revived depot")
	}
	r.browseAll(t, wan, "recovered")
	snap := health.Snapshot()
	var flappyHealth *lors.DepotHealth
	for i := range snap {
		if snap[i].Depot == flappy {
			flappyHealth = &snap[i]
		}
	}
	if flappyHealth == nil || flappyHealth.Open {
		t.Errorf("revived depot still circuit-open: %+v", flappyHealth)
	}

	st = wan.Stats()
	if st.FailedAttempts == 0 || st.ReplicaTries == 0 {
		t.Errorf("WAN agent stats = %+v; chaos left no failover trace", st)
	}
}

// TestChaosStewardSelfHealing proves the full maintenance loop end to
// end: a published database loses a depot while its leases march toward
// expiry, and the steward — probing through the same fault layer the
// failure happened on — renews every surviving lease, re-replicates every
// under-replicated extent onto fresh depots from the L-Bone, prunes the
// dead replicas, and republishes through the DVS. A client arriving after
// the original leases would have expired must still download every view
// set byte-identically.
func TestChaosStewardSelfHealing(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak; run without -short")
	}

	// Depots share one skewable clock so lease expiry is a test decision,
	// not a sleep. The steward and health tracker run on the same clock.
	var skew atomic.Int64
	now := func() time.Time { return time.Now().Add(time.Duration(skew.Load())) }

	params := lightfield.ScaledParams(45, 2, 6) // 2x4 sets
	var depots []string
	startDepot := func() string {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour, Clock: now})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return addr
	}
	for i := 0; i < 4; i++ {
		depots = append(depots, startDepot())
	}
	wan, spare := depots[:3], depots[3]
	_ = spare

	dvsServer := dvs.NewServer("")
	dvsAddr, err := dvsServer.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dvsServer.Close() })
	dvsClient := &dvs.Client{Addr: dvsAddr}

	// The L-Bone knows all four depots; the steward discovers repair
	// targets through it, never from a hard-coded list.
	dir := lbone.NewServer()
	dirAddr, err := dir.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	for i, d := range depots {
		if err := dir.Register(lbone.DepotRecord{Addr: d, X: float64(i), Capacity: 1 << 24, Free: 1 << 24}); err != nil {
			t.Fatal(err)
		}
	}

	gen, err := lightfield.NewProceduralGenerator(params, 77)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
		Dataset:  "neghip",
		Gen:      gen,
		Depots:   wan,
		DVS:      dvsClient,
		Replicas: 2,
		Lease:    10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sa.Close() })
	published, err := sa.PrecomputeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth, fetched over a clean connection.
	clean, err := agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset: "neghip", Params: params, DVS: dvsClient, CacheBytes: 1 << 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	reference := make(map[lightfield.ViewSetID][]byte)
	for _, id := range params.AllViewSets() {
		frame, _, err := clean.GetViewSet(context.Background(), id)
		if err != nil {
			t.Fatalf("clean fetch of %v: %v", id, err)
		}
		reference[id] = frame
	}
	clean.Close()

	// The steward dials through the fault layer, like everything else.
	fd := netsim.NewFaultDialer(nil, 4243)
	health := lors.NewHealthTracker(lors.HealthConfig{
		FailureThreshold: 3,
		Cooldown:         time.Millisecond, // retry quickly; liveness is the prune policy's job here
		Now:              now,
	})
	stw := steward.New(steward.Config{
		ReplicationTarget: 2,
		RenewalWindow:     5 * time.Minute,
		LeaseTerm:         10 * time.Minute,
		PruneAfter:        2,
		VerifyPerCycle:    1,
		Clock:             now,
		Dialer:            fd,
		Health:            health,
		Locate:            steward.LBoneLocator(&lbone.Client{BaseURL: "http://" + dirAddr}, 0, 0),
		Publish: func(ctx context.Context, name string, ex *exnode.ExNode) error {
			xml, err := ex.Marshal()
			if err != nil {
				return err
			}
			return dvsClient.Replace(ctx, dvs.Key{Dataset: "neghip", ViewSet: name}, xml)
		},
	})
	for id, xml := range published {
		ex, err := exnode.Unmarshal(xml)
		if err != nil {
			t.Fatal(err)
		}
		if err := stw.Adopt(id.String(), ex); err != nil {
			t.Fatal(err)
		}
	}

	// Phase A — healthy baseline: fresh leases, full replication, nothing
	// for the steward to do.
	rep, err := stw.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullyReplicated || rep.LeasesRenewed != 0 || rep.RepairsAttempted != 0 || rep.ReplicasPruned != 0 {
		t.Fatalf("baseline cycle did work: %+v", rep)
	}

	// Phase B — the incident: a depot dies while 7 of the leases' 10
	// minutes burn down, putting every survivor inside the renewal window.
	dead := wan[0]
	fd.Kill(dead)
	skew.Store(int64(7 * time.Minute))

	converged := false
	for cycle := 0; cycle < 6; cycle++ {
		rep, err = stw.RunCycle(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.FullyReplicated {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("steward never converged; last cycle %+v", rep)
	}

	st := stw.Stats()
	numObjects := len(published)
	if st.LeasesRenewed == 0 {
		t.Error("no leases renewed despite expiring survivors")
	}
	if st.RepairsSucceeded < int64(numObjects) {
		t.Errorf("repairs = %d, want >= %d (one per under-replicated object)", st.RepairsSucceeded, numObjects)
	}
	if st.ReplicasPruned < int64(numObjects) {
		t.Errorf("pruned = %d, want >= %d", st.ReplicasPruned, numObjects)
	}
	if st.Republishes == 0 {
		t.Error("no repaired exNode was republished")
	}
	for _, name := range stw.Objects() {
		ex := stw.ExNode(name)
		if got := ex.ReplicationFactor(); got < 2 {
			t.Errorf("%s: replication factor %d after healing", name, got)
		}
		for _, d := range ex.Depots() {
			if d == dead {
				t.Errorf("%s: still references dead depot", name)
			}
		}
	}

	// Phase C — the proof: past the original leases' expiry, a brand-new
	// client resolving from the DVS sees only renewed/repaired replicas and
	// downloads everything byte-identically, through the same fault layer
	// that killed the depot.
	skew.Store(int64(12 * time.Minute))
	late, err := agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset:    "neghip",
		Params:     params,
		DVS:        dvsClient,
		Dialer:     fd,
		CacheBytes: 1 << 22,
		Retries:    4,
		Rand:       rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(late.Close)
	for _, id := range params.AllViewSets() {
		frame, _, err := late.GetViewSet(context.Background(), id)
		if err != nil {
			t.Fatalf("post-healing GetViewSet(%v): %v", id, err)
		}
		if !bytes.Equal(frame, reference[id]) {
			t.Fatalf("post-healing GetViewSet(%v) returned different bytes", id)
		}
	}
}

// TestChaosDeterministicReplay checks the harness itself: the same seed
// must produce the same fault decisions for the same operation sequence,
// which is what makes chaos failures reproducible.
func TestChaosDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak; run without -short")
	}
	r := newChaosRig(t)
	target := r.wanDepots[0]

	run := func(seed int64) (refused int, checksum int64) {
		fd := netsim.NewFaultDialer(nil, seed)
		fd.SetFault(target, netsim.FaultProfile{RefuseProb: 0.3, CorruptProb: 0.3})
		ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
			Dataset:     "neghip",
			Params:      r.params,
			DVS:         r.dvsClient,
			Dialer:      fd,
			CacheBytes:  1 << 22,
			Retries:     4,
			Parallelism: 1, // sequential extents keep the dial order fixed
			Rand:        rand.New(rand.NewSource(7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ca.Close()
		r.browseAll(t, ca, "replay")
		return fd.Refused(target), ca.Stats().ChecksumErrors
	}

	r1, c1 := run(11)
	r2, c2 := run(11)
	if r1 != r2 || c1 != c2 {
		t.Errorf("same seed diverged: refused %d vs %d, checksum errors %d vs %d", r1, r2, c1, c2)
	}
}
