// Package lonviz is the public facade of the light-field remote
// visualization system: a Go reproduction of "Remote Visualization by
// Browsing Image Based Databases with Logistical Networking" (SC'03).
//
// The implementation lives in internal packages (one per subsystem — see
// README.md); this package re-exports the types and constructors a
// downstream application needs, grouped by role:
//
//   - Building databases: Params, PaperParams, ScaledParams, NewRaycastGenerator,
//     NewProceduralGenerator, BuildDatabase, NewDirStore.
//   - Browsing locally: NewRenderer, MapProvider, ViewerCamera via Params.
//   - The LoN fabric: NewDepot/NewDepotServer (IBP), NewLBone, NewDVS.
//   - Streaming: NewServerAgent, NewClientAgent, NewViewer.
//   - Synthetic data: NegHip, DefaultNegHipTF.
//
// The examples/ directory shows each of these in a runnable program; start
// with examples/quickstart.
package lonviz

import (
	"context"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/exnode"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lbone"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/multiview"
	"lonviz/internal/netsim"
	"lonviz/internal/render"
	"lonviz/internal/timevary"
	"lonviz/internal/volume"
)

// --- geometry and volumes ---

// Vec3 is a 3-component vector (see internal/geom).
type Vec3 = geom.Vec3

// Spherical holds angular spherical coordinates (theta from +Z, phi from +X).
type Spherical = geom.Spherical

// Volume is a regular scalar grid with trilinear sampling.
type Volume = volume.Volume

// TransferFunction maps scalar values to color and opacity.
type TransferFunction = volume.TransferFunction

// NegHip synthesizes the paper's test dataset stand-in: the electrical
// potential of a negative high-energy protein, n^3 voxels.
func NegHip(n int) (*Volume, error) { return volume.NegHip(n) }

// DefaultNegHipTF is the potential-field transfer function preset used in
// the experiments.
func DefaultNegHipTF() *TransferFunction { return volume.DefaultNegHipTF() }

// --- the light field core ---

// Params describes a spherical light field database's geometry.
type Params = lightfield.Params

// ViewSetID identifies one view set block.
type ViewSetID = lightfield.ViewSetID

// ViewSet is an l x l block of sample views, the unit of transfer.
type ViewSet = lightfield.ViewSet

// Generator produces view sets (ray-casting or procedural).
type Generator = lightfield.Generator

// Renderer reconstructs novel views from view sets by 4-D lookup.
type Renderer = lightfield.Renderer

// MapProvider serves view sets from memory to a Renderer.
type MapProvider = lightfield.MapProvider

// DirStore is the on-disk database layout shared by lfgen and lfserve.
type DirStore = lightfield.DirStore

// Image is a square RGB image (one sample view or one rendered frame).
type Image = render.Image

// PaperParams returns the paper's configuration at the given sample-view
// resolution: 2.5 degree lattice, l=6, 288 view sets.
func PaperParams(res int) Params { return lightfield.PaperParams(res) }

// ScaledParams returns a reduced lattice for fast experimentation.
func ScaledParams(stepDeg float64, l, res int) Params {
	return lightfield.ScaledParams(stepDeg, l, res)
}

// NewRaycastGenerator renders sample views from a volume with the parallel
// ray caster.
func NewRaycastGenerator(p Params, vol *Volume, tf *TransferFunction) (Generator, error) {
	return lightfield.NewRaycastGenerator(p, vol, tf)
}

// NewProceduralGenerator synthesizes realistic view sets quickly (for
// transfer experiments and tests).
func NewProceduralGenerator(p Params, seed int64) (Generator, error) {
	return lightfield.NewProceduralGenerator(p, seed)
}

// BuildDatabase generates every view set with a parallel worker pool.
func BuildDatabase(ctx Context, gen Generator, workers int) (*lightfield.BuildResult, error) {
	return lightfield.BuildDatabase(ctx, gen, workers)
}

// NewRenderer builds the client-side lookup renderer over any provider.
func NewRenderer(p Params, prov lightfield.Provider) (*Renderer, error) {
	return lightfield.NewRenderer(p, prov)
}

// NewDirStore opens (creating if needed) an on-disk database directory.
func NewDirStore(dir string, p Params) (*DirStore, error) {
	return lightfield.NewDirStore(dir, p)
}

// EncodeViewSet marshals and compresses a view set for transfer.
func EncodeViewSet(vs *ViewSet, p Params, level int) ([]byte, error) {
	return lightfield.EncodeViewSet(vs, p, level)
}

// DecodeViewSet reverses EncodeViewSet, validating integrity.
func DecodeViewSet(frame []byte, p Params) (*ViewSet, error) {
	return lightfield.DecodeViewSet(frame, p)
}

// --- the Logistical Networking fabric ---

// Depot is an IBP storage depot (best-effort, time-limited allocations).
type Depot = ibp.Depot

// DepotConfig bounds a depot's capacity, lease policy and backing store.
type DepotConfig = ibp.DepotConfig

// DepotServer serves a depot over the IBP wire protocol.
type DepotServer = ibp.Server

// DepotClient performs IBP operations against one depot.
type DepotClient = ibp.Client

// ExNode aggregates IBP capabilities into a logical object (XML-encoded).
type ExNode = exnode.ExNode

// LBoneServer is the depot directory.
type LBoneServer = lbone.Server

// LBoneClient queries and registers with the directory.
type LBoneClient = lbone.Client

// DVSServer is one level of the Dictionary of View Sets hierarchy.
type DVSServer = dvs.Server

// DVSClient queries a DVS server.
type DVSClient = dvs.Client

// NewDepot creates an IBP depot.
func NewDepot(cfg DepotConfig) (*Depot, error) { return ibp.NewDepot(cfg) }

// NewDepotServer wraps a depot for network service.
func NewDepotServer(d *Depot) *DepotServer { return ibp.NewServer(d) }

// NewLBone creates an empty depot directory.
func NewLBone() *LBoneServer { return lbone.NewServer() }

// NewDVS creates a DVS level; parent is the next level up ("" for root).
func NewDVS(parent string) *DVSServer { return dvs.NewServer(parent) }

// Upload stripes an object across depots and returns its exNode.
func Upload(ctx Context, name string, data []byte, opts lors.UploadOptions) (*ExNode, error) {
	return lors.Upload(ctx, name, data, opts)
}

// Download reassembles an exNode's payload with parallel reads and replica
// failover.
func Download(ctx Context, ex *ExNode, opts lors.DownloadOptions) ([]byte, lors.DownloadStats, error) {
	return lors.Download(ctx, ex, opts)
}

// --- streaming agents ---

// ServerAgent renders/publishes view sets on the data's side of the WAN.
type ServerAgent = agent.ServerAgent

// ServerAgentConfig wires a server agent to generator, depots and DVS.
type ServerAgentConfig = agent.ServerAgentConfig

// ClientAgent caches, prefetches and prestages on the user's side.
type ClientAgent = agent.ClientAgent

// ClientAgentConfig wires a client agent to the fabric.
type ClientAgentConfig = agent.ClientAgentConfig

// Viewer is the client process: view set requests, decompression, lookup
// rendering.
type Viewer = agent.Viewer

// AccessRecord reports one view set access as the user experienced it.
type AccessRecord = agent.AccessRecord

// NewServerAgent validates cfg and starts the render scheduler.
func NewServerAgent(cfg ServerAgentConfig) (*ServerAgent, error) { return agent.NewServerAgent(cfg) }

// NewClientAgent validates cfg and builds the agent (call StartPrestaging
// for the aggressive mode).
func NewClientAgent(cfg ClientAgentConfig) (*ClientAgent, error) { return agent.NewClientAgent(cfg) }

// NewViewer builds the client over any view set source (a *ClientAgent or
// an agent.RemoteSource).
func NewViewer(p Params, src agent.ViewSetSource) (*Viewer, error) { return agent.NewViewer(p, src) }

// --- network simulation ---

// LinkProfile describes a simulated link (latency, bandwidth, sharing).
type LinkProfile = netsim.LinkProfile

// Dialer dials with per-destination link profiles.
type Dialer = netsim.Dialer

// NewDialer returns a dialer whose default profile is fallback.
func NewDialer(fallback LinkProfile) *Dialer { return netsim.NewDialer(fallback) }

// --- extensions ---

// Track is a sequence of light field stations for interior navigation.
type Track = multiview.Track

// NewTrack builds stations along a path (paper section 3.2).
func NewTrack(base string, template Params, path []Vec3, radiusScale float64) (*Track, error) {
	return multiview.NewTrack(base, template, path, radiusScale)
}

// Sequence is a time-varying light field database.
type Sequence = timevary.Sequence

// NewSequence describes a time-varying database of the given step count.
func NewSequence(base string, p Params, steps int) (*Sequence, error) {
	return timevary.NewSequence(base, p, steps)
}

// Context aliases context.Context to keep facade signatures tidy.
type Context = context.Context
