package lonviz

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/obs"
	"lonviz/internal/overload"
	"lonviz/internal/session"
)

// TestOverloadControlEndToEnd is the acceptance test for the overload
// layer under real multi-client load: 200 concurrent viewers share one
// client agent against a two-depot deployment where one depot's single
// admission slot is held for the whole run, so every request it sees is
// shed with BUSY. The fleet must still finish every script — BUSY is
// retryable-elsewhere, absorbed by replica failover — with fair
// throughput and bounded tails, while the shed, busy-rejection, and
// coalesce counters prove each overload mechanism actually engaged.
// Finally the whole stack tears down without leaking goroutines.
func TestOverloadControlEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	params := lightfield.ScaledParams(45, 2, 8) // 2x4 sets, tiny frames
	const clients = 200
	const accessesPerClient = 4

	var closers []func()
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		closers = nil
	}
	defer closeAll()

	// Depot 0 carries the admission gate (one slot, no queue); depot 1 is
	// the healthy replica target.
	gate := overload.NewGate(1, 0, time.Millisecond)
	var depots []string
	for i := 0; i < 2; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 26, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		srv.Obs = reg
		if i == 0 {
			srv.Admission = gate
		}
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		closers = append(closers, func() { srv.Close() })
		depots = append(depots, addr)
	}

	dvsServer := dvs.NewServer("")
	dvsServer.Obs = reg
	dvsAddr, err := dvsServer.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	closers = append(closers, func() { dvsServer.Close() })
	dvsClient := &dvs.Client{Addr: dvsAddr}

	// Publish the database replicated across both depots. Workers: 1
	// keeps uploads below the gate's single slot; the slot is only
	// pinned busy after precompute.
	gen, err := lightfield.NewProceduralGenerator(params, 31)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
		Dataset:  "neghip",
		Gen:      gen,
		Depots:   depots,
		DVS:      dvsClient,
		Replicas: 2,
		Workers:  1,
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	closers = append(closers, func() { sa.Close() })
	if _, err := sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// From here on, depot 0 answers BUSY to everything.
	releaseSlot, err := gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	closers = append(closers, releaseSlot)

	ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset:    "neghip",
		Params:     params,
		DVS:        dvsClient,
		CacheBytes: 1 << 10, // tiny: nearly every move refetches, so the fleet keeps hitting depots
		Retries:    2,
		Budget:     lors.NewRetryBudget(lors.DefaultRetryRatio, lors.DefaultRetryBurst),
		Obs:        reg,
		Rand:       rand.New(rand.NewSource(17)),
	})
	if err != nil {
		t.Fatal(err)
	}
	closers = append(closers, ca.Close)

	res, err := session.RunFleet(context.Background(), session.FleetOptions{
		Params:      params,
		Clients:     clients,
		Accesses:    accessesPerClient,
		Seed:        100,
		MoveTimeout: 30 * time.Second,
		NewViewer: func(i int) (*agent.Viewer, error) {
			v, err := agent.NewViewer(params, ca)
			if err != nil {
				return nil, err
			}
			v.MaxDecoded = 1
			return v, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every client finished its whole script: BUSY from the gated depot
	// is absorbed by failover to the healthy replica, never surfaced.
	for _, r := range res.Runs {
		if r.SetupErr != nil {
			t.Fatalf("client %d setup: %v", r.Client, r.SetupErr)
		}
		if len(r.Records) != accessesPerClient || r.Busy != 0 || r.Expired != 0 || r.Errors != 0 {
			t.Fatalf("client %d: %d records busy=%d expired=%d errors=%d",
				r.Client, len(r.Records), r.Busy, r.Expired, r.Errors)
		}
	}
	if got := res.Accesses(); got != clients*accessesPerClient {
		t.Fatalf("accesses = %d, want %d", got, clients*accessesPerClient)
	}

	// Fairness: every client's throughput stays within 2x of the fair
	// share of aggregate throughput — half the depot fleet being in
	// permanent overload must not starve anyone.
	fair := res.AggregateFPS() / clients
	for _, r := range res.Runs {
		if fps := r.FPS(); fps < fair/2 {
			t.Errorf("client %d fps %.2f below half fair share %.2f", r.Client, fps, fair)
		}
	}
	// Bounded tail: the slowest client's p99 move latency stays inside
	// the move deadline, with a wide margin for CI machines.
	if p99 := res.WorstP99Ms(); p99 <= 0 || p99 > 15000 {
		t.Fatalf("worst p99 = %.1f ms, want (0, 15000]", p99)
	}

	// Each overload mechanism engaged and said so in metrics.
	shed := reg.Counter(obs.Label(obs.MIBPShed, "reason", overload.ReasonQueueFull)).Value()
	if shed == 0 {
		t.Error("gated depot never shed a request")
	}
	if v := reg.Counter(obs.MLorsBusyRejections).Value(); v == 0 {
		t.Error("no BUSY rejections recorded by lors failover")
	}
	if v := reg.Counter(obs.MAgentCoalesced).Value(); v == 0 {
		t.Error("no coalesced requests: 200 clients never shared a flight")
	}
	st := ca.Stats()
	if st.Coalesced == 0 || st.BusyRejections == 0 {
		t.Errorf("agent stats: coalesced=%d busy_rejections=%d, want both > 0", st.Coalesced, st.BusyRejections)
	}
	t.Logf("fleet: %.1f aggregate fps, worst p99 %.1f ms, spread %.2f; shed=%d busy_rejections=%d coalesced=%d",
		res.AggregateFPS(), res.WorstP99Ms(), res.FairnessSpread(),
		shed, st.BusyRejections, st.Coalesced)

	// Teardown leaks nothing: the fleet's viewers, flights, and servers
	// are all gone once the closers run.
	closeAll()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+10 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRetryBudgetCapsAmplificationEndToEnd drives a download whose only
// replica sits behind a permanently held admission slot: the first pass
// is rejected BUSY, and the drained retry budget refuses the second pass
// instead of re-hammering the overloaded depot. The failure keeps the
// typed BUSY sentinel and the budget-exhausted counter fires.
func TestRetryBudgetCapsAmplificationEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 22, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	gate := overload.NewGate(1, 0, time.Millisecond)
	srv := ibp.NewServer(d)
	srv.Obs = reg
	srv.Admission = gate
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Store the payload while the slot is free, then pin the depot busy.
	payload := []byte("overload budget e2e payload")
	cl := &ibp.Client{Addr: addr}
	caps, err := cl.Allocate(context.Background(), int64(len(payload)), time.Hour, ibp.Stable)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Store(context.Background(), caps.Write, 0, payload); err != nil {
		t.Fatal(err)
	}
	release, err := gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(release)

	ex := &exnode.ExNode{
		Name:     "budget-e2e",
		Length:   int64(len(payload)),
		Checksum: exnode.ChecksumOf(payload),
		Extents: []exnode.Extent{{
			Length:   int64(len(payload)),
			Checksum: exnode.ChecksumOf(payload),
			Replicas: []exnode.Replica{{Depot: addr, ReadCap: caps.Read, ManageCap: caps.Manage}},
		}},
	}
	// A budget with less than one banked token refuses the very first
	// retry pass; without it, Retries would hit the busy depot twice more.
	_, stats, err := lors.Download(context.Background(), ex, lors.DownloadOptions{
		Retries:     3,
		BackoffBase: time.Millisecond,
		Budget:      lors.NewRetryBudget(0.001, 0.5),
		Obs:         reg,
	})
	if err == nil {
		t.Fatal("download against a pinned-busy depot succeeded")
	}
	if !errors.Is(err, ibp.ErrBusy) {
		t.Fatalf("err = %v, want the typed ibp.ErrBusy preserved through the budget failure", err)
	}
	if stats.BudgetExhausted == 0 {
		t.Fatalf("stats = %+v, want BudgetExhausted > 0", stats)
	}
	if stats.BusyRejections == 0 {
		t.Fatalf("stats = %+v, want BusyRejections > 0", stats)
	}
	if v := reg.Counter(obs.MLorsRetryBudgetExhausted).Value(); v == 0 {
		t.Error("lors.retry_budget_exhausted counter never fired")
	}
	if v := reg.Counter(obs.MLorsBusyRejections).Value(); v == 0 {
		t.Error("lors.download.busy_rejections counter never fired")
	}
}
