package lonviz

import (
	"context"
	"testing"
	"time"

	"lonviz/internal/experiments"
)

// TestEdgeFleetEndToEnd is the acceptance test for the cooperative edge
// cache tier: 50 concurrent clients, each with its own private cache,
// browse the same database twice over identical cursor scripts — first
// isolated (every miss crosses the WAN per client), then sharing one
// edge cache. Sharing must lift the fleet-aggregate WAN-free hit rate
// past 0.75 while the isolated baseline stays in the historical band
// below the bar, and the edge's fill history must show each view set
// crossing the WAN at most once for the entire fleet.
func TestEdgeFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet run")
	}
	cfg := experiments.DefaultConfig()
	// The hit-rate comparison is about access classes, not transfer speed:
	// a fatter WAN pipe keeps 50 concurrent clients from serializing on
	// the shared token bucket without changing what counts as a WAN fetch.
	cfg.WAN.Bandwidth = 32 << 20
	cfg.Accesses = 24
	cfg.ThinkTime = 10 * time.Millisecond

	const clients = 50
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	run, err := experiments.EdgeFleetExperiment(ctx, cfg, 200, experiments.EdgeFleetOptions{
		Clients:    clients,
		Trajectory: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both legs must have actually browsed.
	wantAccesses := clients * cfg.Accesses
	if got := run.Isolated.Accesses(); got != wantAccesses {
		t.Errorf("isolated leg completed %d/%d accesses", got, wantAccesses)
	}
	if got := run.Shared.Accesses(); got != wantAccesses {
		t.Errorf("shared leg completed %d/%d accesses", got, wantAccesses)
	}

	shared, isolated := run.SharedHitRate(), run.IsolatedHitRate()
	t.Logf("hit rate: shared=%.3f isolated=%.3f classes=%v edge=%+v",
		shared, isolated, run.Shared.ClassCounts(), run.EdgeStats)
	if shared < 0.75 {
		t.Errorf("shared-edge fleet hit rate %.3f, want >= 0.75", shared)
	}
	// The isolated baseline sits in the historical single-cache band
	// (BENCH reports 0.62 for a full-length session) — in particular it
	// must not itself clear the shared bar, or the comparison is vacuous.
	if isolated < 0.30 || isolated > 0.72 {
		t.Errorf("isolated baseline hit rate %.3f outside the expected [0.30, 0.72] band", isolated)
	}
	if shared <= isolated {
		t.Errorf("sharing did not help: shared=%.3f isolated=%.3f", shared, isolated)
	}

	// WAN-once: the whole fleet's demand reached the depots as at most one
	// fetch per view set (no refills means no extent crossed twice), and
	// no agent bypassed the edge to the WAN on its own.
	numSets := len(cfg.ParamsAt(experiments.ScaleRes(200)).AllViewSets())
	if run.EdgeStats.FilledSets > numSets {
		t.Errorf("edge filled %d distinct view sets, database has %d", run.EdgeStats.FilledSets, numSets)
	}
	if run.EdgeStats.Refills != 0 {
		t.Errorf("edge refilled %d extents; every extent must cross the WAN at most once", run.EdgeStats.Refills)
	}
	if run.SharedAgents.WANFetches != 0 {
		t.Errorf("shared leg agents made %d direct WAN fetches, want 0 (edge was up throughout)", run.SharedAgents.WANFetches)
	}
	if run.SharedAgents.EdgeFetches == 0 {
		t.Error("shared leg recorded no edge-classed fetches")
	}
	if run.EdgeStats.Hits == 0 {
		t.Error("edge cache recorded no hits")
	}
}
