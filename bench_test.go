// Package lonviz's root benchmark harness: one benchmark per table/figure
// of the paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. These are experiment drivers more than
// micro-benchmarks — each iteration runs the real system — so they use
// reduced session lengths; cmd/lfbench runs the full 58-access sessions.
//
// Run with: go test -bench=. -benchmem
package lonviz

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/codec"
	"lonviz/internal/exnode"
	"lonviz/internal/experiments"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/session"
)

// benchConfig shrinks sessions so each b.N iteration stays around a
// second.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Accesses = 12
	cfg.ThinkTime = 2 * time.Millisecond
	cfg.WAN.Latency = 10 * time.Millisecond
	return cfg
}

// BenchmarkFig7_DatabaseSize measures database generation + lossless
// compression throughput (the data behind Figure 7) and reports the
// compression ratio.
func BenchmarkFig7_DatabaseSize(b *testing.B) {
	cfg := benchConfig()
	p := cfg.ParamsAt(50) // paper 200x200 at 1/4 scale
	gen, err := lightfield.NewProceduralGenerator(p, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	ids := p.AllViewSets()
	b.SetBytes(p.BytesPerViewSet())
	var raw, packed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		vs, err := gen.GenerateViewSet(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		frame, err := lightfield.EncodeViewSet(vs, p, codec.DefaultCompression)
		if err != nil {
			b.Fatal(err)
		}
		raw += p.BytesPerViewSet()
		packed += int64(len(frame))
	}
	b.ReportMetric(float64(raw)/float64(packed), "compression-ratio")
}

// BenchmarkFig8_Decompression measures per-view-set zlib inflation at the
// three resolutions of Figure 8.
func BenchmarkFig8_Decompression(b *testing.B) {
	cfg := benchConfig()
	for _, paperRes := range experiments.LatencyResolutions {
		res := experiments.ScaleRes(paperRes)
		b.Run(resName(paperRes), func(b *testing.B) {
			p := cfg.ParamsAt(res)
			gen, err := lightfield.NewProceduralGenerator(p, cfg.Seed)
			if err != nil {
				b.Fatal(err)
			}
			vs, err := gen.GenerateViewSet(context.Background(), lightfield.ViewSetID{R: 1, C: 2})
			if err != nil {
				b.Fatal(err)
			}
			frame, err := lightfield.EncodeViewSet(vs, p, codec.DefaultCompression)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(p.BytesPerViewSet())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lightfield.DecodeViewSet(frame, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// latencyBench runs the orchestrated session for one case at one paper
// resolution per iteration, reporting the paper's metrics.
func latencyBench(b *testing.B, paperRes int, cs experiments.Case) {
	b.Helper()
	cfg := benchConfig()
	res := experiments.ScaleRes(paperRes)
	var meanSum, wanSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := experiments.RunCase(context.Background(), cfg, res, cs)
		if err != nil {
			b.Fatal(err)
		}
		var m float64
		for _, s := range session.TotalSeconds(recs) {
			m += s
		}
		meanSum += m / float64(len(recs))
		wanSum += float64(session.ClassCounts(recs)[agent.AccessWAN])
	}
	b.ReportMetric(meanSum/float64(b.N), "mean-access-sec")
	b.ReportMetric(wanSum/float64(b.N), "wan-accesses")
}

// BenchmarkFig9_Latency200 regenerates Figure 9's three cases at 200x200.
func BenchmarkFig9_Latency200(b *testing.B) {
	for cs, name := range caseNames() {
		b.Run(name, func(b *testing.B) { latencyBench(b, 200, cs) })
	}
}

// BenchmarkFig10_Latency300 regenerates Figure 10 at 300x300.
func BenchmarkFig10_Latency300(b *testing.B) {
	for cs, name := range caseNames() {
		b.Run(name, func(b *testing.B) { latencyBench(b, 300, cs) })
	}
}

// BenchmarkFig11_Latency500 regenerates Figure 11 at 500x500.
func BenchmarkFig11_Latency500(b *testing.B) {
	for cs, name := range caseNames() {
		b.Run(name, func(b *testing.B) { latencyBench(b, 500, cs) })
	}
}

func caseNames() map[experiments.Case]string {
	return map[experiments.Case]string{
		experiments.Case1LAN:    "case1_lan",
		experiments.Case2WAN:    "case2_wan",
		experiments.Case3Staged: "case3_landepot",
	}
}

// BenchmarkFig12_CommLatency isolates the communication latency of the
// three access classes (Figure 12's log-scale bands): an agent cache hit,
// a LAN depot fetch, and a WAN fetch.
func BenchmarkFig12_CommLatency(b *testing.B) {
	cfg := benchConfig()
	res := experiments.ScaleRes(300)
	d, err := experiments.Deploy(context.Background(), cfg, res, experiments.Case3Staged)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	done, err := d.CA.StartPrestaging(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		b.Fatal("prestaging did not finish")
	}
	ids := d.Params.AllViewSets()

	b.Run("hit", func(b *testing.B) {
		id := ids[0]
		if _, _, err := d.CA.GetViewSet(context.Background(), id); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rep, err := d.CA.GetViewSet(context.Background(), id)
			if err != nil || rep.Class != agent.AccessHit {
				b.Fatalf("class %v err %v", rep.Class, err)
			}
		}
	})
	b.Run("lan_depot", func(b *testing.B) {
		// Fetch staged view sets directly from the LAN depot each time by
		// bypassing the cache (download via the staged exNode path).
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[1+i%(len(ids)-1)]
			d.CA.DropCached(id)
			_, rep, err := d.CA.GetViewSet(context.Background(), id)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Class != agent.AccessLANDepot {
				b.Fatalf("access %d class %v, want lan-depot", i, rep.Class)
			}
		}
	})
	b.Run("wan", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[1+i%(len(ids)-1)]
			d.CA.DropCached(id)
			d.CA.DropStaged(id)
			_, rep, err := d.CA.GetViewSet(context.Background(), id)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Class != agent.AccessWAN {
				b.Fatalf("access %d class %v, want wan", i, rep.Class)
			}
		}
	})
}

// BenchmarkClientRenderFPS measures the client's table-lookup rendering
// rate (paper: above 30 fps even at 500x500 displays).
func BenchmarkClientRenderFPS(b *testing.B) {
	cfg := benchConfig()
	p := cfg.ParamsAt(64)
	gen, err := lightfield.NewProceduralGenerator(p, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	db, err := lightfield.BuildDatabase(context.Background(), gen, 0)
	if err != nil {
		b.Fatal(err)
	}
	r, err := lightfield.NewRenderer(p, lightfield.MapProvider(db.Sets))
	if err != nil {
		b.Fatal(err)
	}
	for _, display := range []int{125, 200, 500} {
		b.Run(resName(display), func(b *testing.B) {
			sp := geom.Spherical{Theta: 1.3, Phi: 0.7}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.Phi += 0.001
				cam, err := p.ViewerCamera(sp, p.OuterRadius*1.6, display)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := r.RenderView(cam); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "fps")
		})
	}
}

func resName(res int) string {
	return "res" + itoa(res)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- ablation benches (DESIGN.md section 5) ---

// BenchmarkAblationViewSetSize varies l: small view sets transfer less per
// miss but give the client a narrower supported window.
func BenchmarkAblationViewSetSize(b *testing.B) {
	for _, l := range []int{2, 3, 6} {
		b.Run("l"+itoa(l), func(b *testing.B) {
			cfg := benchConfig()
			cfg.L = l
			cfg.StepDeg = 10 // rows=18, cols=36: divisible by 2, 3, 6
			var meanSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := experiments.RunCase(context.Background(), cfg, 50, experiments.Case2WAN)
				if err != nil {
					b.Fatal(err)
				}
				var m float64
				for _, s := range session.TotalSeconds(recs) {
					m += s
				}
				meanSum += m / float64(len(recs))
			}
			b.ReportMetric(meanSum/float64(b.N), "mean-access-sec")
		})
	}
}

// BenchmarkAblationStripes varies the striping width of a LoRS download.
func BenchmarkAblationStripes(b *testing.B) {
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(9)).Read(payload)
	addrs := make([]string, 4)
	for i := range addrs {
		dep, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 26, MaxLease: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		srv := ibp.NewServer(dep)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = addr
	}
	for _, width := range []int{1, 2, 4} {
		b.Run("depots"+itoa(width), func(b *testing.B) {
			ex, err := lors.Upload(context.Background(), "bench", payload, lors.UploadOptions{
				Depots:     addrs[:width],
				StripeSize: 128 << 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := lors.Download(context.Background(), ex, lors.DownloadOptions{Parallelism: 8})
				if err != nil {
					b.Fatal(err)
				}
				if !bytes.Equal(got, payload) {
					b.Fatal("corrupt download")
				}
			}
		})
	}
}

// BenchmarkAblationPrefetchPolicy compares no prefetch, the paper's
// quadrant policy, and full-neighborhood prefetch.
func BenchmarkAblationPrefetchPolicy(b *testing.B) {
	type variant struct {
		name   string
		mutate func(*experiments.Config)
	}
	for _, v := range []variant{
		{"none", func(c *experiments.Config) { c.NoPrefetch = true }},
		{"quadrant", func(c *experiments.Config) {}},
		{"all_neighbors", func(c *experiments.Config) { c.PrefetchAllNeighbors = true }},
	} {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig()
			v.mutate(&cfg)
			var meanSum, wanSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := experiments.RunCase(context.Background(), cfg, 50, experiments.Case2WAN)
				if err != nil {
					b.Fatal(err)
				}
				var m float64
				for _, s := range session.TotalSeconds(recs) {
					m += s
				}
				meanSum += m / float64(len(recs))
				wanSum += float64(session.ClassCounts(recs)[agent.AccessWAN])
			}
			b.ReportMetric(meanSum/float64(b.N), "mean-access-sec")
			b.ReportMetric(wanSum/float64(b.N), "user-visible-wan")
		})
	}
}

// BenchmarkAblationZlibLevel varies the lossless compression level (the
// paper suggests "a more efficient compression scheme" as an alternative
// to client caching).
func BenchmarkAblationZlibLevel(b *testing.B) {
	cfg := benchConfig()
	p := cfg.ParamsAt(75)
	gen, err := lightfield.NewProceduralGenerator(p, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	vs, err := gen.GenerateViewSet(context.Background(), lightfield.ViewSetID{R: 1, C: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, lv := range []struct {
		name  string
		level int
	}{{"speed1", codec.BestSpeed}, {"default6", 6}, {"best9", codec.BestCompression}} {
		level := lv.level
		b.Run(lv.name, func(b *testing.B) {
			frame, err := lightfield.EncodeViewSet(vs, p, level)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(p.BytesPerViewSet())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lightfield.DecodeViewSet(frame, p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.BytesPerViewSet())/float64(len(frame)), "compression-ratio")
		})
	}
}

// BenchmarkAblationStageOrder compares cursor-proximity staging (the
// paper's policy) with sequential row-major staging.
func BenchmarkAblationStageOrder(b *testing.B) {
	for _, v := range []struct {
		name  string
		order agent.StageOrder
	}{
		{"proximity", agent.StageByProximity},
		{"sequential", agent.StageSequential},
	} {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.StageOrderPolicy = v.order
			var wanSum, lanSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := experiments.RunCase(context.Background(), cfg, 50, experiments.Case3Staged)
				if err != nil {
					b.Fatal(err)
				}
				counts := session.ClassCounts(recs)
				wanSum += float64(counts[agent.AccessWAN])
				lanSum += float64(counts[agent.AccessLANDepot])
			}
			b.ReportMetric(wanSum/float64(b.N), "wan-accesses")
			b.ReportMetric(lanSum/float64(b.N), "lan-depot-accesses")
		})
	}
}

// BenchmarkExNodeRoundTrip covers the metadata path: exNode XML encode +
// decode for a striped, replicated object.
func BenchmarkExNodeRoundTrip(b *testing.B) {
	ex := &exnode.ExNode{Name: "r03c11", Length: 6 * 64 << 10}
	for s := 0; s < 6; s++ {
		x := exnode.Extent{Offset: int64(s) * 64 << 10, Length: 64 << 10}
		for r := 0; r < 3; r++ {
			x.Replicas = append(x.Replicas, exnode.Replica{
				Depot:     "depot:6714",
				ReadCap:   "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
				ManageCap: "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
			})
		}
		ex.Extents = append(ex.Extents, x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := ex.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exnode.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRaceReplicas compares sequential replica failover with
// racing all replicas per extent (the progressive-redundancy download of
// the paper's reference [14]): racing trades redundant transfer for
// latency-variance resistance.
func BenchmarkAblationRaceReplicas(b *testing.B) {
	payload := make([]byte, 512<<10)
	rand.New(rand.NewSource(11)).Read(payload)
	addrs := make([]string, 3)
	for i := range addrs {
		dep, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 26, MaxLease: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		srv := ibp.NewServer(dep)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = addr
	}
	ex, err := lors.Upload(context.Background(), "race", payload, lors.UploadOptions{
		Depots:     addrs,
		StripeSize: 128 << 10,
		Replicas:   3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		race bool
	}{{"failover", false}, {"race", true}} {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			var tries float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, stats, err := lors.Download(context.Background(), ex, lors.DownloadOptions{
					RaceReplicas: v.race,
					Parallelism:  8,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !bytes.Equal(got, payload) {
					b.Fatal("corrupt download")
				}
				tries += float64(stats.ReplicaTries)
			}
			b.ReportMetric(tries/float64(b.N), "replica-tries")
		})
	}
}

// BenchmarkAblationSuppressOnMiss measures the section 4.3 mitigation:
// pausing the prestager while a client-facing miss is in flight.
func BenchmarkAblationSuppressOnMiss(b *testing.B) {
	for _, v := range []struct {
		name     string
		suppress bool
	}{{"staging_always", false}, {"suppress_on_miss", true}} {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.SuppressStageOnMiss = v.suppress
			var meanSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := experiments.RunCase(context.Background(), cfg, 50, experiments.Case3Staged)
				if err != nil {
					b.Fatal(err)
				}
				var m float64
				for _, s := range session.TotalSeconds(recs) {
					m += s
				}
				meanSum += m / float64(len(recs))
			}
			b.ReportMetric(meanSum/float64(b.N), "mean-access-sec")
		})
	}
}
