package lonviz

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"lonviz/internal/edge"
	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/lbone"
	"lonviz/internal/obs"
	"lonviz/internal/obs/fleet"
	"lonviz/internal/obs/slo"
	"lonviz/internal/steward"
)

// fleetMemberDoc mirrors the member rows of /debug/fleet.
type fleetMemberDoc struct {
	Addr        string `json:"addr"`
	Kind        string `json:"kind"`
	ServiceAddr string `json:"service_addr,omitempty"`
	State       string `json:"state"`
	Err         string `json:"err,omitempty"`
}

type fleetDoc struct {
	Self       string             `json:"self"`
	Members    []fleetMemberDoc   `json:"members"`
	Aggregates map[string]float64 `json:"aggregates"`
	Firing     int                `json:"firing"`
	Alerts     []slo.Alert        `json:"alerts"`
}

// fleetNode is one process under the scraper's watch: a service plus the
// observability stack its /metrics ride on.
type fleetNode struct {
	reg   *obs.Registry
	stack *slo.Stack
}

func startFleetNode(t *testing.T, addr string) *fleetNode {
	t.Helper()
	n := &fleetNode{reg: obs.NewRegistry()}
	stack, err := slo.Start(slo.Options{
		Addr:           addr,
		Registry:       n.reg,
		Tracer:         obs.NewTracer(256),
		Logger:         obs.NewLogger(io.Discard, 64),
		SampleInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("node stack on %q: %v", addr, err)
	}
	n.stack = stack
	stack.MarkReady()
	return n
}

// TestFleetFederationEndToEnd is the acceptance test for the fleet
// scraper: an L-Bone registry, three depots, an edge cache, and a steward
// running the federation layer. Killing a depot mid-run must flip its row
// in the health matrix to down, drop the fleet replica-coverage aggregate
// below the replication floor so the fleet SLO fires critical, and
// degrade the steward's own /healthz through the federated health chain.
// Restarting the depot on the same addresses clears all of it. Every
// stage is observed from the operator surface: /debug/fleet, the cluster
// TSDB at /debug/fleet/tsdb, and /healthz.
func TestFleetFederationEndToEnd(t *testing.T) {
	ctx := context.Background()

	// The L-Bone registry the fleet sweep discovers members through.
	lb := lbone.NewServer()
	lbAddr, err := lb.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lb.Close() })
	lbClient := &lbone.Client{BaseURL: "http://" + lbAddr}

	// Three depots, each with its own metrics stack registered in L-Bone.
	type depotProc struct {
		depot   *ibp.Depot
		srv     *ibp.Server
		addr    string
		node    *fleetNode
		metrics string
	}
	var depots []*depotProc
	for i := 0; i < 3; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p := &depotProc{depot: d, srv: srv, addr: addr, node: startFleetNode(t, "127.0.0.1:0")}
		p.metrics = p.node.stack.Addr()
		t.Cleanup(func() { p.srv.Close(); p.node.stack.Close(context.Background()) })
		if err := lbClient.Register(ctx, lbone.DepotRecord{
			Addr: addr, Kind: lbone.KindDepot, Capacity: 1 << 24, Free: 1 << 24, MetricsAddr: p.metrics,
		}); err != nil {
			t.Fatal(err)
		}
		depots = append(depots, p)
	}

	// An edge cache with its own stack, announced as kind=edge.
	edgeNode := startFleetNode(t, "127.0.0.1:0")
	cache, err := edge.NewCache(edge.CacheConfig{CapacityBytes: 1 << 20, Obs: edgeNode.reg})
	if err != nil {
		t.Fatal(err)
	}
	edgeSrv := edge.NewServer(cache)
	edgeSrv.Obs = edgeNode.reg
	edgeAddr, err := edgeSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { edgeSrv.Close(); edgeNode.stack.Close(context.Background()) })
	if err := lbClient.Register(ctx, lbone.DepotRecord{
		Addr: edgeAddr, Kind: lbone.KindEdge, MetricsAddr: edgeNode.stack.Addr(),
	}); err != nil {
		t.Fatal(err)
	}

	// A steward-managed object replicated on depots 0 and 1: the coverage
	// the fleet SLO guards.
	payload := make([]byte, 4*1024)
	rand.New(rand.NewSource(11)).Read(payload)
	storeReplica := func(addr string) exnode.Replica {
		cl := &ibp.Client{Addr: addr}
		caps, err := cl.Allocate(ctx, int64(len(payload)), time.Hour, ibp.Stable)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Store(ctx, caps.Write, 0, payload); err != nil {
			t.Fatal(err)
		}
		return exnode.Replica{Depot: addr, ReadCap: caps.Read, ManageCap: caps.Manage}
	}
	ex := &exnode.ExNode{
		Name:   "fleet-e2e-obj",
		Length: int64(len(payload)),
		Extents: []exnode.Extent{{
			Offset:   0,
			Length:   int64(len(payload)),
			Checksum: exnode.ChecksumOf(payload),
			Replicas: []exnode.Replica{storeReplica(depots[0].addr), storeReplica(depots[1].addr)},
		}},
	}

	stewReg := obs.NewRegistry()
	stw := steward.New(steward.Config{
		ReplicationTarget: 2,
		ScanInterval:      time.Hour,
		Obs:               stewReg,
	})
	if err := stw.Adopt("fleet-e2e-obj", ex); err != nil {
		t.Fatal(err)
	}

	// The federation layer, wired exactly as lfsteward -fleet-scrape does:
	// built before the stack so its handlers ride Options.Extra, self
	// address patched in after bind.
	fl := fleet.New(fleet.Config{
		LBone:       lbClient,
		Interval:    150 * time.Millisecond,
		PeerTimeout: 2 * time.Second,
		Replication: 2,
		Coverage:    stw.ReplicaCoverage,
		Registry:    stewReg,
	})
	stack, err := slo.Start(slo.Options{
		Addr:           "127.0.0.1:0",
		Registry:       stewReg,
		Tracer:         obs.NewTracer(256),
		Logger:         obs.NewLogger(io.Discard, 64),
		SampleInterval: 50 * time.Millisecond,
		Extra: map[string]http.Handler{
			"/debug/fleet":      fl.Handler(),
			"/debug/fleet/tsdb": fl.TSDBHandler(),
		},
		ExtraHealth: []func() error{fl.HealthError},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stack.Close(context.Background()) })
	stack.MarkReady()
	fl.SetSelf(stack.Addr())
	fl.AddStaticPeer(stack.Addr(), lbone.KindSteward)
	fleetStop := make(chan struct{})
	t.Cleanup(func() { close(fleetStop) })
	go fl.Run(fleetStop)

	base := "http://" + stack.Addr()
	fetchFleet := func() fleetDoc {
		_, body := sloHTTPGet(t, base+"/debug/fleet")
		var doc fleetDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("/debug/fleet unparseable: %v\n%s", err, body)
		}
		return doc
	}
	memberState := func(doc fleetDoc, metricsAddr string) (fleetMemberDoc, bool) {
		for _, m := range doc.Members {
			if m.Addr == metricsAddr {
				return m, true
			}
		}
		return fleetMemberDoc{}, false
	}
	waitFor := func(what string, timeout time.Duration, ok func(fleetDoc) bool) fleetDoc {
		deadline := time.Now().Add(timeout)
		for {
			doc := fetchFleet()
			if ok(doc) {
				return doc
			}
			if time.Now().After(deadline) {
				raw, _ := json.MarshalIndent(doc, "", "  ")
				t.Fatalf("timed out waiting for %s\n/debug/fleet: %s", what, raw)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Stage 1: the full fleet converges — three depots, the edge, and the
	// steward itself, all up, with full replica coverage.
	doc := waitFor("whole fleet up", 15*time.Second, func(doc fleetDoc) bool {
		if len(doc.Members) < 5 {
			return false
		}
		for _, m := range doc.Members {
			if m.State != fleet.StateUp {
				return false
			}
		}
		return doc.Aggregates["replica.coverage.min"] == 2
	})
	if doc.Self != stack.Addr() {
		t.Fatalf("self = %q, want %q", doc.Self, stack.Addr())
	}
	kinds := map[string]int{}
	for _, m := range doc.Members {
		kinds[m.Kind]++
	}
	if kinds[lbone.KindDepot] != 3 || kinds[lbone.KindEdge] != 1 || kinds[lbone.KindSteward] != 1 {
		t.Fatalf("fleet kinds = %v, want 3 depots + 1 edge + 1 steward", kinds)
	}
	if m, _ := memberState(doc, depots[0].metrics); m.ServiceAddr != depots[0].addr {
		t.Fatalf("depot 0 row = %+v, want service addr %s", m, depots[0].addr)
	}
	if code, body := sloHTTPGet(t, base+"/healthz"); code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz on the healthy fleet = %d %q", code, body)
	}

	// The text rendering of the matrix works against the live fleet too.
	_, text := sloHTTPGet(t, base+"/debug/fleet?format=text")
	if !strings.Contains(string(text), "NODE") || !strings.Contains(string(text), depots[0].metrics) {
		t.Fatalf("text matrix missing depot row:\n%s", text)
	}

	// Stage 2: kill depot 0 — service and metrics stack both. The matrix
	// must mark it down and the replica-coverage SLO must fire critical.
	depots[0].srv.Close()
	depots[0].node.stack.Close(context.Background())
	doc = waitFor("depot 0 down + coverage alert firing", 15*time.Second, func(doc fleetDoc) bool {
		m, ok := memberState(doc, depots[0].metrics)
		if !ok || m.State != fleet.StateDown {
			return false
		}
		for _, a := range doc.Alerts {
			if a.Rule == "fleet-replica-coverage" && a.State == slo.StateFiring {
				return true
			}
		}
		return false
	})
	if got := doc.Aggregates["replica.coverage.min"]; got != 1 {
		t.Fatalf("replica.coverage.min during outage = %v, want 1", got)
	}
	for _, a := range doc.Alerts {
		if a.Rule != "fleet-replica-coverage" || a.State != slo.StateFiring {
			continue
		}
		if a.Severity != slo.SeverityCritical {
			t.Fatalf("coverage alert severity = %q, want critical", a.Severity)
		}
		if a.Scope != slo.ScopeFleet {
			t.Fatalf("coverage alert scope = %q, want fleet", a.Scope)
		}
	}

	// The steward's own /healthz degrades through the federated chain and
	// names the fleet rule.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := sloHTTPGet(t, base+"/healthz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(string(body), "fleet-replica-coverage") {
				t.Fatalf("/healthz reason does not name the fleet rule:\n%s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz stayed %d during fleet-critical alert", code)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Stage 3: restart the depot on the same addresses (the data survives
	// in the depot object) and re-announce it. The matrix recovers, the
	// alert resolves after its clear window, and /healthz returns to 200.
	restarted := ibp.NewServer(depots[0].depot)
	if _, err := restarted.ListenAndServe(depots[0].addr); err != nil {
		t.Fatalf("restarting depot 0 on %s: %v", depots[0].addr, err)
	}
	t.Cleanup(func() { restarted.Close() })
	depots[0].node = startFleetNode(t, depots[0].metrics)
	t.Cleanup(func() { depots[0].node.stack.Close(context.Background()) })
	if err := lbClient.Register(ctx, lbone.DepotRecord{
		Addr: depots[0].addr, Kind: lbone.KindDepot, Capacity: 1 << 24, Free: 1 << 24,
		MetricsAddr: depots[0].metrics,
	}); err != nil {
		t.Fatal(err)
	}

	waitFor("recovery: depot up, alert resolved", 20*time.Second, func(doc fleetDoc) bool {
		m, ok := memberState(doc, depots[0].metrics)
		if !ok || m.State != fleet.StateUp {
			return false
		}
		return doc.Firing == 0 && doc.Aggregates["replica.coverage.min"] == 2
	})
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, body := sloHTTPGet(t, base+"/healthz")
		if code == http.StatusOK {
			if strings.TrimSpace(string(body)) != "ok" {
				t.Fatalf("/healthz recovery body = %q, want ok", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz stayed %d after fleet recovery:\n%s", code, body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Stage 4: the cluster TSDB retained the outage — the coverage-min
	// series has history that dips to 1 and returns to 2.
	q := url.Values{"name": {obs.MFleetCoverageMin}, "since": {"120s"}, "agg": {"raw"}}
	_, body := sloHTTPGet(t, base+"/debug/fleet/tsdb?"+q.Encode())
	var rawResp struct {
		Points []struct {
			V float64 `json:"v"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &rawResp); err != nil {
		t.Fatalf("/debug/fleet/tsdb unparseable: %v\n%s", err, body)
	}
	if len(rawResp.Points) < 2 {
		t.Fatalf("cluster TSDB has %d coverage points, want history", len(rawResp.Points))
	}
	sawDip, sawFull := false, false
	for _, p := range rawResp.Points {
		if p.V == 1 {
			sawDip = true
		}
		if p.V == 2 {
			sawFull = true
		}
	}
	if !sawDip || !sawFull {
		t.Fatalf("coverage series dip=%v full=%v, want the outage and the recovery retained\n%s",
			sawDip, sawFull, body)
	}

	// The fleet's own scrape accounting landed in the steward's /metrics.
	_, body = sloHTTPGet(t, base+"/metrics")
	var metricsDoc map[string]any
	if err := json.Unmarshal(body, &metricsDoc); err != nil {
		t.Fatalf("/metrics unparseable: %v", err)
	}
	if v, ok := metricsDoc[obs.MFleetScrapes].(float64); !ok || v < 2 {
		t.Fatalf("%s = %v, want >= 2", obs.MFleetScrapes, metricsDoc[obs.MFleetScrapes])
	}
	foundMemberGauge := false
	for name := range metricsDoc {
		if strings.HasPrefix(name, obs.MFleetMembers+"{") {
			foundMemberGauge = true
		}
	}
	if !foundMemberGauge {
		t.Fatalf("no %s{state=...} gauge on /metrics", obs.MFleetMembers)
	}
}
