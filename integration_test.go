package lonviz

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBinariesEndToEnd builds the real executables and runs a complete
// deployment: two depots, an L-Bone, a DVS, a server agent publishing a
// procedural database, and a browsing client — the multi-process shape of
// the paper's system, on loopback.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	bin := t.TempDir()
	for _, tool := range []string{"depotd", "lboned", "dvsd", "lfserve", "lfbrowse", "lfgen"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	waitListen := func(addr string) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
			if err == nil {
				c.Close()
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("nothing listening on %s", addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	var procs []*exec.Cmd
	start := func(name string, args ...string) *syncBuffer {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		buf := &syncBuffer{}
		cmd.Stdout = buf
		cmd.Stderr = buf
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		procs = append(procs, cmd)
		return buf
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	})

	lbAddr := freePort()
	start("lboned", "-addr", lbAddr)
	waitListen(lbAddr)

	depot1 := freePort()
	depot2 := freePort()
	start("depotd", "-addr", depot1, "-capacity", "67108864", "-lbone", "http://"+lbAddr, "-x", "1", "-y", "1")
	start("depotd", "-addr", depot2, "-capacity", "67108864", "-dir", t.TempDir(), "-lbone", "http://"+lbAddr, "-x", "2", "-y", "2")
	waitListen(depot1)
	waitListen(depot2)

	dvsAddr := freePort()
	start("dvsd", "-addr", dvsAddr, "-generate")
	waitListen(dvsAddr)

	// lfgen writes a store; lfserve serves it with live fallback.
	storeDir := t.TempDir()
	genOut, err := exec.Command(filepath.Join(bin, "lfgen"),
		"-out", storeDir, "-procedural", "-res", "16", "-step", "30", "-l", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("lfgen: %v\n%s", err, genOut)
	}
	if !strings.Contains(string(genOut), "generated 8 view sets") {
		t.Fatalf("lfgen output unexpected:\n%s", genOut)
	}

	saAddr := freePort()
	serveBuf := start("lfserve",
		"-addr", saAddr,
		"-depots", depot1+","+depot2,
		"-dvs", dvsAddr,
		"-procedural",
		"-store", storeDir,
		"-res", "16", "-step", "30", "-l", "3")
	waitListen(saAddr)
	// Wait for precompute to publish.
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(serveBuf.String(), "published") {
		if time.Now().After(deadline) {
			t.Fatalf("lfserve never published:\n%s", serveBuf.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The client browses 10 accesses.
	browse := exec.Command(filepath.Join(bin, "lfbrowse"),
		"-dvs", dvsAddr,
		"-res", "16", "-step", "30", "-l", "3",
		"-accesses", "10", "-think", "5ms")
	out, err := browse.CombinedOutput()
	if err != nil {
		t.Fatalf("lfbrowse: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "10 accesses") {
		t.Errorf("lfbrowse did not complete the session:\n%s", text)
	}
	// At least one access had to cross the network.
	if !strings.Contains(text, "wan") {
		t.Errorf("no WAN access recorded:\n%s", text)
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	rows := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "1 ") || strings.Contains(line, "r0") {
			rows++
		}
	}
	if rows == 0 {
		t.Errorf("no per-access rows in output:\n%s", text)
	}
	fmt.Fprintln(os.Stderr, "integration: full binary pipeline OK")
}

// syncBuffer is a bytes.Buffer safe to read while an exec.Cmd's copier
// goroutine is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
