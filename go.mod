module lonviz

go 1.22
