#!/bin/sh
# Benchmark regression tripwire: run the quick smoke benchmark and diff it
# against the committed baseline (default: the highest-numbered
# BENCH_<n>.json). Most regressions past 20% print "lfbench: WARN ..."
# lines without failing the build — micro benchmarks on shared machines
# are too noisy to gate on — but the LAN case's frames_per_second (no
# simulated WAN in the path, so it is stable) FAILS past a 10% drop: it is
# the throughput signature of the zero-copy pipelined data plane.
#
# Usage: benchdiff.sh [baseline.json] [output-dir]
set -eu

cd "$(dirname "$0")/.."

baseline=${1:-$(ls BENCH_[0-9]*.json 2>/dev/null | sort -V | tail -1)}
baseline=${baseline:-BENCH_0.json}
outdir=${2:-}
if [ ! -s "$baseline" ]; then
	echo "benchdiff: baseline $baseline missing; regenerate with:" >&2
	echo "  go run ./cmd/lfbench -quick -json . && mv BENCH_quick.json $baseline" >&2
	exit 1
fi
cleanup=""
if [ -z "$outdir" ]; then
	outdir=$(mktemp -d)
	cleanup=$outdir
	trap 'rm -rf "$cleanup"' EXIT
fi

go run ./cmd/lfbench -quick -json "$outdir" -compare "$baseline"
