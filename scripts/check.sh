#!/bin/sh
# Pre-merge gate: formatting, static analysis, the full test suite, and the
# race detector (which also runs the chaos fault-injection soak).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== docs audit"
sh scripts/docscheck.sh

echo "== lfbench -quick + benchdiff vs BENCH_0.json (warn-only)"
benchdir=$(mktemp -d)
trap 'rm -rf "$benchdir"' EXIT
sh scripts/benchdiff.sh BENCH_0.json "$benchdir"
report="$benchdir/BENCH_quick.json"
if [ ! -s "$report" ]; then
	echo "lfbench -quick did not write $report" >&2
	exit 1
fi
for key in p50 p95 p99 cache_hit_rate frames_per_second; do
	if ! grep -q "\"$key\"" "$report"; then
		echo "BENCH_quick.json missing \"$key\"" >&2
		exit 1
	fi
done

echo "== lftop smoke"
go build -o "$benchdir/depotd" ./cmd/depotd
go build -o "$benchdir/lftop" ./cmd/lftop
"$benchdir/depotd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 >"$benchdir/depotd.log" 2>&1 &
depot_pid=$!
maddr=""
i=0
while [ "$i" -lt 50 ]; do
	maddr=$(sed -n 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p' "$benchdir/depotd.log")
	[ -n "$maddr" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$maddr" ]; then
	echo "depotd did not report a metrics address:" >&2
	cat "$benchdir/depotd.log" >&2
	kill "$depot_pid" 2>/dev/null || true
	exit 1
fi
if ! "$benchdir/lftop" -once -json "$maddr" >"$benchdir/lftop.json"; then
	echo "lftop -once -json failed against $maddr" >&2
	kill "$depot_pid" 2>/dev/null || true
	exit 1
fi
kill "$depot_pid" 2>/dev/null || true
if ! grep -q '"endpoint"' "$benchdir/lftop.json"; then
	echo "lftop smoke produced no target summary" >&2
	exit 1
fi

echo "all checks passed"
