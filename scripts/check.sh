#!/bin/sh
# Pre-merge gate: formatting, static analysis, the full test suite, and the
# race detector (which also runs the chaos fault-injection soak).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "all checks passed"
