#!/bin/sh
# Pre-merge gate: formatting, static analysis, the full test suite, and the
# race detector (which also runs the chaos fault-injection soak).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== docs audit"
sh scripts/docscheck.sh

echo "== lfbench -quick"
benchdir=$(mktemp -d)
trap 'rm -rf "$benchdir"' EXIT
go run ./cmd/lfbench -quick -json "$benchdir"
report="$benchdir/BENCH_quick.json"
if [ ! -s "$report" ]; then
	echo "lfbench -quick did not write $report" >&2
	exit 1
fi
for key in p50 p95 p99 cache_hit_rate frames_per_second; do
	if ! grep -q "\"$key\"" "$report"; then
		echo "BENCH_quick.json missing \"$key\"" >&2
		exit 1
	fi
done

echo "all checks passed"
