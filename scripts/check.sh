#!/bin/sh
# Pre-merge gate: formatting, static analysis, the full test suite, and the
# race detector (which also runs the chaos fault-injection soak).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

# -shuffle=on randomizes test order within each package, so hidden
# inter-test coupling (shared registries, leaked goroutines, package
# globals) fails here instead of in some future reordering.
echo "== go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "== go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "== docs audit"
sh scripts/docscheck.sh

echo "== pipelined data plane race smoke"
# The zero-copy hot path multiplexes tagged requests over shared
# connections and hands pooled buffers across goroutines; run its most
# concurrency-heavy tests under the race detector explicitly (and
# -count=1, so they rerun even when the cached ./... results are fresh).
go test -race -count=1 \
	-run 'TestPipelined|TestPipeWindowBackpressure|TestPipeMidstreamDrop|TestPipePoolSerialFallback' \
	./internal/ibp
go test -race -count=1 -run 'TestDownloadPipelinedPool|TestStreamBuffer' ./internal/lors
go test -race -count=1 -run 'TestGetViewSetStream|TestViewerUsesStreamingPath' ./internal/agent

echo "== lfbench -quick + benchdiff vs newest committed baseline (warn-only except LAN fps)"
baseline=$(ls BENCH_[0-9]*.json 2>/dev/null | sort -V | tail -1)
if [ -z "$baseline" ]; then
	echo "no BENCH_<n>.json baseline committed" >&2
	exit 1
fi
benchdir=$(mktemp -d)
trap 'rm -rf "$benchdir"' EXIT
sh scripts/benchdiff.sh "$baseline" "$benchdir"
report="$benchdir/BENCH_quick.json"
if [ ! -s "$report" ]; then
	echo "lfbench -quick did not write $report" >&2
	exit 1
fi
for key in p50 p95 p99 cache_hit_rate frames_per_second; do
	if ! grep -q "\"$key\"" "$report"; then
		echo "BENCH_quick.json missing \"$key\"" >&2
		exit 1
	fi
done

echo "== lfbench fleet smoke (10 clients)"
go run ./cmd/lfbench -clients 10 -accesses 12 -bench-name fleetsmoke -json "$benchdir"
fleet="$benchdir/BENCH_fleetsmoke.json"
[ -s "$fleet" ] || { echo "lfbench -clients did not write $fleet" >&2; exit 1; }
for key in aggregate_fps worst_p99_ms fairness_spread coalesced; do
	if ! grep -q "\"$key\"" "$fleet"; then
		echo "BENCH_fleetsmoke.json missing \"$key\"" >&2
		exit 1
	fi
done

echo "== lftop smoke"
go build -o "$benchdir/depotd" ./cmd/depotd
go build -o "$benchdir/lftop" ./cmd/lftop
"$benchdir/depotd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 -tsdb-interval 100ms \
	-max-inflight 4 -max-queue 8 -max-queue-wait 200ms >"$benchdir/depotd.log" 2>&1 &
depot_pid=$!
teardown() {
	kill "$depot_pid" 2>/dev/null || true
	wait "$depot_pid" 2>/dev/null || true
}
smoke_fail() {
	echo "$1" >&2
	echo "--- depotd.log ---" >&2
	cat "$benchdir/depotd.log" >&2
	teardown
	exit 1
}
# The log parse only discovers the :0-bound port; readiness is gated on
# /readyz below, not on log lines.
maddr=""
i=0
while [ "$i" -lt 50 ]; do
	maddr=$(sed -n 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p' "$benchdir/depotd.log")
	[ -n "$maddr" ] && break
	i=$((i + 1))
	sleep 0.1
done
[ -n "$maddr" ] || smoke_fail "depotd did not report a metrics address within 5s"
if ! "$benchdir/lftop" -wait-ready 5s -once -json "$maddr" >"$benchdir/lftop.json"; then
	smoke_fail "lftop -wait-ready -once -json failed against $maddr"
fi
grep -q '"endpoint"' "$benchdir/lftop.json" || smoke_fail "lftop smoke produced no target summary"
# The TSDB must retain a queryable range (>= 2 samples at -tsdb-interval
# 100ms) and /debug/alerts must serve parseable JSON.
sleep 0.5
series=$(curl -s "http://$maddr/debug/tsdb" | tr ',' '\n' | sed -n 's/.*"name": *"\([^"{]*\)".*/\1/p' | head -1)
[ -n "$series" ] || smoke_fail "/debug/tsdb index lists no unlabeled series"
npoints=$(curl -s "http://$maddr/debug/tsdb?name=$series&since=30s&agg=raw" | grep -c '"t":' || true)
[ "$npoints" -ge 2 ] || smoke_fail "/debug/tsdb range query for $series returned $npoints samples, want >= 2"
alerts=$(curl -s "http://$maddr/debug/alerts")
printf '%s' "$alerts" | grep -q '"firing"' || smoke_fail "/debug/alerts did not serve an alert summary: $alerts"
# The overload families are registered eagerly, so an idle depot with
# admission control configured must already expose them at zero.
metrics=$(curl -s "http://$maddr/metrics")
for name in ibp.shed ibp.server.inflight ibp.server.queue_depth; do
	printf '%s' "$metrics" | grep -q "\"$name" || smoke_fail "/metrics missing overload family $name"
done
# The runtime harvester registers its families eagerly too: the GC-pause
# series must show up in the TSDB index on an idle depot.
curl -s "http://$maddr/debug/tsdb" | grep -q '"runtime.go.gc.pause.ms"' \
	|| smoke_fail "/debug/tsdb does not list runtime.go.gc.pause.ms"
# The flight recorder must serve a parseable (empty) bundle index.
captures=$(curl -s "http://$maddr/debug/capture")
printf '%s' "$captures" | grep -q '"bundles"' \
	|| smoke_fail "/debug/capture did not serve a bundle index: $captures"
teardown

echo "== lfedged edge smoke (shared-edge fleet through a real daemon)"
go build -o "$benchdir/lfedged" ./cmd/lfedged
"$benchdir/lfedged" -addr 127.0.0.1:0 -cache-bytes 33554432 -metrics-addr 127.0.0.1:0 \
	>"$benchdir/lfedged.log" 2>&1 &
edge_pid=$!
edge_teardown() {
	kill "$edge_pid" 2>/dev/null || true
	wait "$edge_pid" 2>/dev/null || true
}
edge_fail() {
	echo "$1" >&2
	echo "--- lfedged.log ---" >&2
	cat "$benchdir/lfedged.log" >&2
	edge_teardown
	exit 1
}
eaddr=""
emaddr=""
i=0
while [ "$i" -lt 50 ]; do
	eaddr=$(sed -n 's|.*serving IBP edge cache on \([^ ]*\).*|\1|p' "$benchdir/lfedged.log")
	emaddr=$(sed -n 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p' "$benchdir/lfedged.log")
	[ -n "$eaddr" ] && [ -n "$emaddr" ] && break
	i=$((i + 1))
	sleep 0.1
done
[ -n "$eaddr" ] || edge_fail "lfedged did not report a serving address within 5s"
[ -n "$emaddr" ] || edge_fail "lfedged did not report a metrics address within 5s"
go run ./cmd/lfbench -edge -edge-addr "$eaddr" -accesses 12 -bench-name edgesmoke -json "$benchdir" \
	|| edge_fail "lfbench -edge against $eaddr failed"
edgereport="$benchdir/BENCH_edgesmoke.json"
[ -s "$edgereport" ] || edge_fail "lfbench -edge did not write $edgereport"
for key in shared_hit_rate isolated_hit_rate shared_worst_p99_ms edge_hits; do
	if ! grep -q "\"$key\"" "$edgereport"; then
		edge_fail "BENCH_edgesmoke.json missing \"$key\""
	fi
done
# The fleet's later clients must have actually hit the shared cache.
edge_hits=$(curl -s "http://$emaddr/metrics" | grep '"edge.hits"' | sed 's/[^0-9]//g')
[ -n "$edge_hits" ] || edge_fail "/metrics on lfedged has no edge.hits counter"
[ "$edge_hits" -gt 0 ] || edge_fail "edge.hits is $edge_hits after the fleet run, want > 0"
kill -TERM "$edge_pid"
wait "$edge_pid" 2>/dev/null || true
grep -q "shutting down" "$benchdir/lfedged.log" || edge_fail "lfedged did not shut down cleanly on SIGTERM"

echo "all checks passed"
