#!/bin/sh
# Pre-merge gate: formatting, static analysis, the full test suite, and the
# race detector (which also runs the chaos fault-injection soak).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

# -shuffle=on randomizes test order within each package, so hidden
# inter-test coupling (shared registries, leaked goroutines, package
# globals) fails here instead of in some future reordering.
echo "== go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "== go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "== docs audit"
sh scripts/docscheck.sh

echo "== pipelined data plane race smoke"
# The zero-copy hot path multiplexes tagged requests over shared
# connections and hands pooled buffers across goroutines; run its most
# concurrency-heavy tests under the race detector explicitly (and
# -count=1, so they rerun even when the cached ./... results are fresh).
go test -race -count=1 \
	-run 'TestPipelined|TestPipeWindowBackpressure|TestPipeMidstreamDrop|TestPipePoolSerialFallback' \
	./internal/ibp
go test -race -count=1 -run 'TestDownloadPipelinedPool|TestStreamBuffer' ./internal/lors
go test -race -count=1 -run 'TestGetViewSetStream|TestViewerUsesStreamingPath' ./internal/agent

echo "== lfbench -quick + benchdiff vs newest committed baseline (warn-only except LAN fps)"
baseline=$(ls BENCH_[0-9]*.json 2>/dev/null | sort -V | tail -1)
if [ -z "$baseline" ]; then
	echo "no BENCH_<n>.json baseline committed" >&2
	exit 1
fi
benchdir=$(mktemp -d)
trap 'rm -rf "$benchdir"' EXIT
sh scripts/benchdiff.sh "$baseline" "$benchdir"
report="$benchdir/BENCH_quick.json"
if [ ! -s "$report" ]; then
	echo "lfbench -quick did not write $report" >&2
	exit 1
fi
for key in p50 p95 p99 cache_hit_rate frames_per_second; do
	if ! grep -q "\"$key\"" "$report"; then
		echo "BENCH_quick.json missing \"$key\"" >&2
		exit 1
	fi
done

echo "== lfbench fleet smoke (10 clients)"
go run ./cmd/lfbench -clients 10 -accesses 12 -bench-name fleetsmoke -json "$benchdir"
fleet="$benchdir/BENCH_fleetsmoke.json"
[ -s "$fleet" ] || { echo "lfbench -clients did not write $fleet" >&2; exit 1; }
for key in aggregate_fps worst_p99_ms fairness_spread coalesced; do
	if ! grep -q "\"$key\"" "$fleet"; then
		echo "BENCH_fleetsmoke.json missing \"$key\"" >&2
		exit 1
	fi
done

echo "== lftop smoke"
go build -o "$benchdir/depotd" ./cmd/depotd
go build -o "$benchdir/lftop" ./cmd/lftop
"$benchdir/depotd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 -tsdb-interval 100ms \
	-max-inflight 4 -max-queue 8 -max-queue-wait 200ms >"$benchdir/depotd.log" 2>&1 &
depot_pid=$!
teardown() {
	kill "$depot_pid" 2>/dev/null || true
	wait "$depot_pid" 2>/dev/null || true
}
smoke_fail() {
	echo "$1" >&2
	echo "--- depotd.log ---" >&2
	cat "$benchdir/depotd.log" >&2
	teardown
	exit 1
}
# The log parse only discovers the :0-bound port; readiness is gated on
# /readyz below, not on log lines.
maddr=""
i=0
while [ "$i" -lt 50 ]; do
	maddr=$(sed -n 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p' "$benchdir/depotd.log")
	[ -n "$maddr" ] && break
	i=$((i + 1))
	sleep 0.1
done
[ -n "$maddr" ] || smoke_fail "depotd did not report a metrics address within 5s"
if ! "$benchdir/lftop" -wait-ready 5s -once -json "$maddr" >"$benchdir/lftop.json"; then
	smoke_fail "lftop -wait-ready -once -json failed against $maddr"
fi
grep -q '"endpoint"' "$benchdir/lftop.json" || smoke_fail "lftop smoke produced no target summary"
# The TSDB must retain a queryable range (>= 2 samples at -tsdb-interval
# 100ms) and /debug/alerts must serve parseable JSON.
sleep 0.5
series=$(curl -s "http://$maddr/debug/tsdb" | tr ',' '\n' | sed -n 's/.*"name": *"\([^"{]*\)".*/\1/p' | head -1)
[ -n "$series" ] || smoke_fail "/debug/tsdb index lists no unlabeled series"
npoints=$(curl -s "http://$maddr/debug/tsdb?name=$series&since=30s&agg=raw" | grep -c '"t":' || true)
[ "$npoints" -ge 2 ] || smoke_fail "/debug/tsdb range query for $series returned $npoints samples, want >= 2"
alerts=$(curl -s "http://$maddr/debug/alerts")
printf '%s' "$alerts" | grep -q '"firing"' || smoke_fail "/debug/alerts did not serve an alert summary: $alerts"
# The overload families are registered eagerly, so an idle depot with
# admission control configured must already expose them at zero.
metrics=$(curl -s "http://$maddr/metrics")
for name in ibp.shed ibp.server.inflight ibp.server.queue_depth; do
	printf '%s' "$metrics" | grep -q "\"$name" || smoke_fail "/metrics missing overload family $name"
done
# The runtime harvester registers its families eagerly too: the GC-pause
# series must show up in the TSDB index on an idle depot.
curl -s "http://$maddr/debug/tsdb" | grep -q '"runtime.go.gc.pause.ms"' \
	|| smoke_fail "/debug/tsdb does not list runtime.go.gc.pause.ms"
# The flight recorder must serve a parseable (empty) bundle index.
captures=$(curl -s "http://$maddr/debug/capture")
printf '%s' "$captures" | grep -q '"bundles"' \
	|| smoke_fail "/debug/capture did not serve a bundle index: $captures"
teardown

echo "== lfedged edge smoke (shared-edge fleet through a real daemon)"
go build -o "$benchdir/lfedged" ./cmd/lfedged
"$benchdir/lfedged" -addr 127.0.0.1:0 -cache-bytes 33554432 -metrics-addr 127.0.0.1:0 \
	>"$benchdir/lfedged.log" 2>&1 &
edge_pid=$!
edge_teardown() {
	kill "$edge_pid" 2>/dev/null || true
	wait "$edge_pid" 2>/dev/null || true
}
edge_fail() {
	echo "$1" >&2
	echo "--- lfedged.log ---" >&2
	cat "$benchdir/lfedged.log" >&2
	edge_teardown
	exit 1
}
eaddr=""
emaddr=""
i=0
while [ "$i" -lt 50 ]; do
	eaddr=$(sed -n 's|.*serving IBP edge cache on \([^ ]*\).*|\1|p' "$benchdir/lfedged.log")
	emaddr=$(sed -n 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p' "$benchdir/lfedged.log")
	[ -n "$eaddr" ] && [ -n "$emaddr" ] && break
	i=$((i + 1))
	sleep 0.1
done
[ -n "$eaddr" ] || edge_fail "lfedged did not report a serving address within 5s"
[ -n "$emaddr" ] || edge_fail "lfedged did not report a metrics address within 5s"
go run ./cmd/lfbench -edge -edge-addr "$eaddr" -accesses 12 -bench-name edgesmoke -json "$benchdir" \
	|| edge_fail "lfbench -edge against $eaddr failed"
edgereport="$benchdir/BENCH_edgesmoke.json"
[ -s "$edgereport" ] || edge_fail "lfbench -edge did not write $edgereport"
for key in shared_hit_rate isolated_hit_rate shared_worst_p99_ms edge_hits; do
	if ! grep -q "\"$key\"" "$edgereport"; then
		edge_fail "BENCH_edgesmoke.json missing \"$key\""
	fi
done
# The fleet's later clients must have actually hit the shared cache.
edge_hits=$(curl -s "http://$emaddr/metrics" | grep '"edge.hits"' | sed 's/[^0-9]//g')
[ -n "$edge_hits" ] || edge_fail "/metrics on lfedged has no edge.hits counter"
[ "$edge_hits" -gt 0 ] || edge_fail "edge.hits is $edge_hits after the fleet run, want > 0"
kill -TERM "$edge_pid"
wait "$edge_pid" 2>/dev/null || true
grep -q "shutting down" "$benchdir/lfedged.log" || edge_fail "lfedged did not shut down cleanly on SIGTERM"

echo "== fleet federation smoke (lboned + depots + publisher + steward -fleet-scrape)"
go build -o "$benchdir/lboned" ./cmd/lboned
go build -o "$benchdir/dvsd" ./cmd/dvsd
go build -o "$benchdir/lfserve" ./cmd/lfserve
go build -o "$benchdir/lfsteward" ./cmd/lfsteward
fleet_pids=""
fleet_teardown() {
	for pid in $fleet_pids; do
		kill "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	done
}
fleet_fail() {
	echo "$1" >&2
	for f in lboned dvsd depot1 depot2 lfserve lfsteward; do
		[ -s "$benchdir/$f.log" ] && { echo "--- $f.log ---" >&2; tail -20 "$benchdir/$f.log" >&2; }
	done
	fleet_teardown
	exit 1
}
# parse_addr <log> <sed-pattern>: poll a daemon's startup line for a
# :0-bound address for up to 5s.
parse_addr() {
	_out=""
	_i=0
	while [ "$_i" -lt 50 ]; do
		_out=$(sed -n "$2" "$benchdir/$1")
		[ -n "$_out" ] && break
		_i=$((_i + 1))
		sleep 0.1
	done
	printf '%s' "$_out"
}
"$benchdir/lboned" -addr 127.0.0.1:0 >"$benchdir/lboned.log" 2>&1 &
fleet_pids="$fleet_pids $!"
lbaddr=$(parse_addr lboned.log 's|.*serving directory on http://\([^ ]*\).*|\1|p')
[ -n "$lbaddr" ] || fleet_fail "lboned did not report a directory address"
"$benchdir/dvsd" -addr 127.0.0.1:0 >"$benchdir/dvsd.log" 2>&1 &
fleet_pids="$fleet_pids $!"
dvsaddr=$(parse_addr dvsd.log 's|.*serving DVS on \([^ ]*\).*|\1|p')
[ -n "$dvsaddr" ] || fleet_fail "dvsd did not report a serving address"
depotaddrs=""
for n in 1 2; do
	"$benchdir/depotd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
		-lbone "http://$lbaddr" -heartbeat 1s >"$benchdir/depot$n.log" 2>&1 &
	fleet_pids="$fleet_pids $!"
	daddr=$(parse_addr "depot$n.log" 's|.*serving IBP on \([^ ]*\).*|\1|p')
	[ -n "$daddr" ] || fleet_fail "depot$n did not report a serving address"
	depotaddrs="$depotaddrs,$daddr"
done
depotaddrs=${depotaddrs#,}
# A tiny published database (8 view sets) so the steward has exNodes to
# manage and replica coverage to report.
"$benchdir/lfserve" -addr 127.0.0.1:0 -depots "$depotaddrs" -dvs "$dvsaddr" \
	-procedural -res 16 -step 45 -l 2 -replicas 2 \
	-lbone "http://$lbaddr" -metrics-addr 127.0.0.1:0 >"$benchdir/lfserve.log" 2>&1 &
fleet_pids="$fleet_pids $!"
published=$(parse_addr lfserve.log 's|.*published \([0-9]*\) view sets.*|\1|p')
[ -n "$published" ] || fleet_fail "lfserve did not publish the database"
"$benchdir/lfsteward" -dvs "$dvsaddr" -res 16 -step 45 -l 2 -replicas 2 \
	-lbone "http://$lbaddr" -interval 5s -fleet-scrape -fleet-interval 300ms \
	-metrics-addr 127.0.0.1:0 >"$benchdir/lfsteward.log" 2>&1 &
fleet_pids="$fleet_pids $!"
smaddr=$(parse_addr lfsteward.log 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p')
[ -n "$smaddr" ] || fleet_fail "lfsteward did not report a metrics address"
# The matrix converges: two depots, the publisher agent, and the steward
# itself, all up.
up=0
i=0
while [ "$i" -lt 100 ]; do
	up=$(curl -s "http://$smaddr/debug/fleet" | grep -c '"state": *"up"' || true)
	[ "$up" -ge 4 ] && break
	i=$((i + 1))
	sleep 0.2
done
[ "$up" -ge 4 ] || fleet_fail "/debug/fleet shows $up members up, want >= 4 (2 depots + agent + steward)"
matrix=$(curl -s "http://$smaddr/debug/fleet")
printf '%s' "$matrix" | grep -q '"replica.coverage.min"' \
	|| fleet_fail "/debug/fleet aggregates missing replica.coverage.min: $matrix"
curl -s "http://$smaddr/debug/fleet?format=text" | grep -q 'NODE' \
	|| fleet_fail "/debug/fleet?format=text did not render the matrix header"
# The cluster TSDB retains fleet series and answers range queries.
curl -s "http://$smaddr/debug/fleet/tsdb" | grep -q '"fleet\.' \
	|| fleet_fail "/debug/fleet/tsdb index lists no fleet.* series"
sleep 0.7
covpoints=$(curl -s "http://$smaddr/debug/fleet/tsdb?name=fleet.replica.coverage.min&since=30s&agg=raw" | grep -c '"t":' || true)
[ "$covpoints" -ge 2 ] || fleet_fail "cluster TSDB coverage query returned $covpoints points, want >= 2"
# lftop's fleet mode reads the same surface.
if ! "$benchdir/lftop" -fleet -once -json "$smaddr" >"$benchdir/lftop_fleet.json"; then
	fleet_fail "lftop -fleet -once -json failed against $smaddr"
fi
grep -q '"members"' "$benchdir/lftop_fleet.json" \
	|| fleet_fail "lftop -fleet produced no member matrix"
fleet_teardown

echo "all checks passed"
