#!/bin/sh
# Docs audit: the operator docs must not drift from the source.
#
#  1. Every command-line flag defined in cmd/*/main.go must appear in
#     docs/OPERATIONS.md as `-flagname`.
#  2. Every metric family and span name declared in
#     internal/obs/names.go must appear in docs/OBSERVABILITY.md.
#  3. Every HTTP endpoint the obs mux serves (including the SLO stack's
#     extra handlers) must appear in docs/OBSERVABILITY.md.
#  4. Every wire verb a server dispatches, every IBP error code, and the
#     optional request-line tokens must appear in docs/PROTOCOL.md — it
#     claims to be the authoritative protocol reference, so it must not
#     drift from the dispatch code.
#  5. Every /debug/* endpoint registered anywhere under internal/obs
#     (including the flight recorder's /debug/capture routes) and every
#     runtime.* family in names.go must appear in docs/OBSERVABILITY.md.
#  6. The fleet federation surface must be documented: every fleet.*
#     family in names.go, the /debug/fleet endpoints, and every built-in
#     fleet SLO rule name in internal/obs/slo must appear in
#     docs/OBSERVABILITY.md, and the rule names in the
#     docs/OPERATIONS.md runbook too.
set -eu

cd "$(dirname "$0")/.."

fail=0

echo "== flags vs docs/OPERATIONS.md"
for main in cmd/*/main.go; do
	cmdname=$(basename "$(dirname "$main")")
	flags=$(grep -oE 'flag\.[A-Za-z0-9]+\("[^"]+"' "$main" | sed 's/.*("\([^"]*\)"/\1/' | sort -u)
	for f in $flags; do
		if ! grep -qE -- "(^|[\`| ])-$f(\`|,| |\$)" docs/OPERATIONS.md; then
			echo "MISSING: flag -$f of $cmdname not documented in docs/OPERATIONS.md" >&2
			fail=1
		fi
	done
done

echo "== metric names vs docs/OBSERVABILITY.md"
names=$(grep -oE '= "[a-z][a-z0-9._]+"' internal/obs/names.go | sed 's/= "\(.*\)"/\1/' | sort -u)
for n in $names; do
	if ! grep -qF -- "$n" docs/OBSERVABILITY.md; then
		echo "MISSING: metric/span name $n not documented in docs/OBSERVABILITY.md" >&2
		fail=1
	fi
done

echo "== HTTP endpoints vs docs/OBSERVABILITY.md"
endpoints=$({ grep -hE 'mux\.Handle' internal/obs/http.go | grep -oE '"/[a-z0-9/]+"' || true
	grep -oE '"/[a-z0-9/]+"' internal/obs/slo/stack.go || true
} | tr -d '"' | sed 's|^/debug/pprof/.*|/debug/pprof/|' | sort -u)
for e in $endpoints; do
	if ! grep -qF -- "$e" docs/OBSERVABILITY.md; then
		echo "MISSING: endpoint $e not documented in docs/OBSERVABILITY.md" >&2
		fail=1
	fi
done

echo "== wire verbs, error codes, and tokens vs docs/PROTOCOL.md"
# Verbs are collected from the server dispatch code itself (case "VERB"
# switches, f[0] == "VERB" matches, and the PIPELINE mode-switch check),
# so adding a verb without documenting it fails here.
verbs=$(grep -hoE '(case |== )"[A-Z]+"' \
	internal/ibp/server.go internal/ibp/server_pipe.go \
	internal/edge/server.go internal/edge/server_pipe.go \
	internal/dvs/dvs.go internal/agent/remote.go internal/agent/serveragent.go \
	| grep -oE '"[A-Z]+"' | tr -d '"' | sort -u)
for v in $verbs; do
	if ! grep -qE "(^|[\`| ])$v(\`| |\$)" docs/PROTOCOL.md; then
		echo "MISSING: wire verb $v not documented in docs/PROTOCOL.md" >&2
		fail=1
	fi
done
codes=$(sed -n 's/^\tcode[A-Za-z]* *= *"\([A-Z]*\)"$/\1/p' internal/ibp/proto.go | sort -u)
[ -n "$codes" ] || { echo "docscheck: extracted no IBP error codes" >&2; exit 1; }
for c in $codes; do
	if ! grep -qF -- "\`$c\`" docs/PROTOCOL.md; then
		echo "MISSING: IBP error code $c not documented in docs/PROTOCOL.md" >&2
		fail=1
	fi
done
for tok in tag= deadline= trace=; do
	if ! grep -qF -- "$tok" docs/PROTOCOL.md; then
		echo "MISSING: request-line token $tok not documented in docs/PROTOCOL.md" >&2
		fail=1
	fi
done

echo "== debug endpoints and runtime families vs docs/OBSERVABILITY.md"
# Audit #3 reads only the mux registrations; this sweep catches every
# /debug/* path string anywhere in internal/obs (handlers that route by
# prefix, like the flight recorder's /debug/capture, included).
# Tests probe deliberately-bogus paths (404 cases), so only non-test
# sources define the documented surface.
debugeps=$(grep -rhoE --exclude='*_test.go' '"/debug/[a-z0-9/]*"' internal/obs \
	| tr -d '"' | sed 's|^/debug/pprof/.*|/debug/pprof/|' | sed 's|/$||' | sort -u)
[ -n "$debugeps" ] || { echo "docscheck: extracted no /debug endpoints" >&2; exit 1; }
for e in $debugeps; do
	if ! grep -qF -- "$e" docs/OBSERVABILITY.md; then
		echo "MISSING: debug endpoint $e not documented in docs/OBSERVABILITY.md" >&2
		fail=1
	fi
done
runtimefams=$(grep -oE '= "runtime\.[a-z0-9._]+"' internal/obs/names.go | sed 's/= "\(.*\)"/\1/' | sort -u)
[ -n "$runtimefams" ] || { echo "docscheck: extracted no runtime.* families from names.go" >&2; exit 1; }
for n in $runtimefams; do
	if ! grep -qF -- "$n" docs/OBSERVABILITY.md; then
		echo "MISSING: runtime family $n not documented in docs/OBSERVABILITY.md" >&2
		fail=1
	fi
done

echo "== fleet federation surface vs docs"
fleetfams=$(grep -oE '= "fleet\.[a-z0-9._]+"' internal/obs/names.go | sed 's/= "\(.*\)"/\1/' | sort -u)
[ -n "$fleetfams" ] || { echo "docscheck: extracted no fleet.* families from names.go" >&2; exit 1; }
for n in $fleetfams; do
	if ! grep -qF -- "$n" docs/OBSERVABILITY.md; then
		echo "MISSING: fleet family $n not documented in docs/OBSERVABILITY.md" >&2
		fail=1
	fi
done
for e in /debug/fleet /debug/fleet/tsdb; do
	if ! grep -qF -- "$e" docs/OBSERVABILITY.md; then
		echo "MISSING: fleet endpoint $e not documented in docs/OBSERVABILITY.md" >&2
		fail=1
	fi
done
# Built-in fleet rule names come from the FleetDefaultRules source, so
# renaming a rule without updating the alert docs fails here.
fleetrules=$(grep -hoE 'Name: *"fleet-[a-z-]+"' internal/obs/slo/*.go | grep -oE '"fleet-[a-z-]+"' | tr -d '"' | sort -u)
[ -n "$fleetrules" ] || { echo "docscheck: extracted no fleet rule names from internal/obs/slo" >&2; exit 1; }
for r in $fleetrules; do
	for doc in docs/OBSERVABILITY.md docs/OPERATIONS.md; do
		if ! grep -qF -- "$r" "$doc"; then
			echo "MISSING: fleet rule $r not documented in $doc" >&2
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "docs audit failed" >&2
	exit 1
fi
echo "docs audit passed"
