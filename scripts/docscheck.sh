#!/bin/sh
# Docs audit: the operator docs must not drift from the source.
#
#  1. Every command-line flag defined in cmd/*/main.go must appear in
#     docs/OPERATIONS.md as `-flagname`.
#  2. Every metric family and span name declared in
#     internal/obs/names.go must appear in docs/OBSERVABILITY.md.
#  3. Every HTTP endpoint the obs mux serves (including the SLO stack's
#     extra handlers) must appear in docs/OBSERVABILITY.md.
set -eu

cd "$(dirname "$0")/.."

fail=0

echo "== flags vs docs/OPERATIONS.md"
for main in cmd/*/main.go; do
	cmdname=$(basename "$(dirname "$main")")
	flags=$(grep -oE 'flag\.[A-Za-z0-9]+\("[^"]+"' "$main" | sed 's/.*("\([^"]*\)"/\1/' | sort -u)
	for f in $flags; do
		if ! grep -qE -- "(^|[\`| ])-$f(\`|,| |\$)" docs/OPERATIONS.md; then
			echo "MISSING: flag -$f of $cmdname not documented in docs/OPERATIONS.md" >&2
			fail=1
		fi
	done
done

echo "== metric names vs docs/OBSERVABILITY.md"
names=$(grep -oE '= "[a-z][a-z0-9._]+"' internal/obs/names.go | sed 's/= "\(.*\)"/\1/' | sort -u)
for n in $names; do
	if ! grep -qF -- "$n" docs/OBSERVABILITY.md; then
		echo "MISSING: metric/span name $n not documented in docs/OBSERVABILITY.md" >&2
		fail=1
	fi
done

echo "== HTTP endpoints vs docs/OBSERVABILITY.md"
endpoints=$({ grep -hE 'mux\.Handle' internal/obs/http.go | grep -oE '"/[a-z0-9/]+"' || true
	grep -oE '"/[a-z0-9/]+"' internal/obs/slo/stack.go || true
} | tr -d '"' | sed 's|^/debug/pprof/.*|/debug/pprof/|' | sort -u)
for e in $endpoints; do
	if ! grep -qF -- "$e" docs/OBSERVABILITY.md; then
		echo "MISSING: endpoint $e not documented in docs/OBSERVABILITY.md" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "docs audit failed" >&2
	exit 1
fi
echo "docs audit passed"
