GO ?= go

.PHONY: all build test test-short race vet fmt check chaos

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the chaos soak and the multi-process end-to-end test.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Full gate: what CI (and the pre-merge checklist) runs.
check:
	./scripts/check.sh

# Just the fault-injection soak, verbosely.
chaos:
	$(GO) test -race -v -run 'TestChaos' -count=1 .
