// Command lfedged runs the cooperative edge cache daemon: a shared,
// multi-tenant read-through cache speaking the IBP LOAD/STATUS subset,
// deployed between a site's client agents and the WAN depot pool. Client
// agents pointed at it (via -edge-addr / ClientAgentConfig.EdgeAddr)
// rewrite their exNodes so the edge is the preferred replica; the first
// agent to miss pulls each view set across the WAN once and every later
// access — from any tenant — is served at LAN cost. The hot set is
// exported at /metrics as edge.hot.* for lftop and the steward's
// replicator.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lonviz/internal/edge"
	"lonviz/internal/ibp"
	"lonviz/internal/lbone"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
	"lonviz/internal/overload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6730", "listen address")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "cache capacity in bytes")
	shards := flag.Int("shards", 0, "LRU shard count (0 = default 16, clamped to keep shards usefully sized)")
	fillTimeout := flag.Duration("fill-timeout", 30*time.Second, "max duration of one origin-depot fill")
	pipelineWindow := flag.Int("pipeline-window", ibp.DefaultPipelineWindow, "in-flight window for pipelined mode, both granted to clients and used on origin-depot fill connections (0 disables; everything falls back to serial)")
	popHalfLife := flag.Duration("pop-half-life", 30*time.Second, "popularity tracker decay half-life")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently executing requests (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission control: max requests waiting for a slot before shedding with BUSY")
	maxQueueWait := flag.Duration("max-queue-wait", 100*time.Millisecond, "admission control: max time a request may queue before shedding with BUSY")
	lboneURL := flag.String("lbone", "", "L-Bone base URL to announce membership to (e.g. http://host:port); lets a fleet scraper discover this edge")
	x := flag.Float64("x", 0, "network coordinate X for the L-Bone announcement")
	y := flag.Float64("y", 0, "network coordinate Y for the L-Bone announcement")
	heartbeat := flag.Duration("heartbeat", 10*time.Second, "L-Bone heartbeat interval")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("lfedged: %v", err)
	}
	// Flag 0 means "off" on the command line; the library spells that as a
	// negative window (its own 0 means "default").
	window := *pipelineWindow
	if window == 0 {
		window = -1
	}
	cache, err := edge.NewCache(edge.CacheConfig{
		CapacityBytes:  *cacheBytes,
		Shards:         *shards,
		FillTimeout:    *fillTimeout,
		HalfLife:       *popHalfLife,
		PipelineWindow: window,
	})
	if err != nil {
		log.Fatalf("lfedged: %v", err)
	}
	cache.RegisterMetrics(nil)
	srv := edge.NewServer(cache)
	srv.Logf = log.Printf
	srv.PipelineWindow = window
	if *maxInflight > 0 {
		srv.Admission = overload.NewGate(*maxInflight, *maxQueue, *maxQueueWait)
		fmt.Printf("lfedged: admission control: %d in-flight, %d queued, %v max wait\n",
			*maxInflight, *maxQueue, *maxQueueWait)
	}
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("lfedged: listen: %v", err)
	}
	fmt.Printf("lfedged: serving IBP edge cache on %s (capacity %d bytes)\n", bound, *cacheBytes)

	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
	})
	if err != nil {
		log.Fatalf("lfedged: metrics listen: %v", err)
	}
	if stack.Enabled() {
		fmt.Printf("lfedged: metrics on http://%s/metrics\n", stack.Addr())
	}

	// The edge is not a depot — the L-Bone never hands it out for
	// allocation — but announcing membership (kind=edge, with the metrics
	// address) lets the steward's fleet scraper find it and fold its hit
	// rate and hot set into the cluster view.
	stop := make(chan struct{})
	if *lboneURL != "" {
		cl := &lbone.Client{BaseURL: *lboneURL}
		record := func() lbone.DepotRecord {
			st := cache.Stats()
			return lbone.DepotRecord{
				Addr: bound, Kind: lbone.KindEdge, X: *x, Y: *y,
				Capacity: st.Capacity, Free: st.Capacity - st.Used,
				MetricsAddr: stack.Addr(),
			}
		}
		go cl.Heartbeat(record, *heartbeat, stop)
		fmt.Printf("lfedged: announcing to %s at (%g, %g)\n", *lboneURL, *x, *y)
	}
	stack.MarkReady()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	srv.Close()
	closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	_ = stack.Close(closeCtx)
	cancel()
	st := cache.Stats()
	hitRate := 0.0
	if total := st.Hits + st.Misses; total > 0 {
		hitRate = float64(st.Hits) / float64(total)
	}
	fmt.Printf("lfedged: shutting down; %d entries, %d/%d bytes, hit rate %.2f, %d fills (%d failed), %d evictions\n",
		st.Entries, st.Used, st.Capacity, hitRate, st.Fills, st.FillErrors, st.Evictions)
}
