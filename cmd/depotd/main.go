// Command depotd runs an IBP storage depot: the "router for data" of
// Logistical Networking. It serves the allocate/store/load/manage/copy
// protocol and optionally registers itself with an L-Bone directory,
// heartbeating its capacity.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lonviz/internal/ibp"
	"lonviz/internal/lbone"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
	"lonviz/internal/overload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6714", "listen address")
	capacity := flag.Int64("capacity", 1<<30, "storage capacity in bytes")
	dir := flag.String("dir", "", "back allocations with files in this directory (default: memory)")
	maxLease := flag.Duration("max-lease", time.Hour, "maximum allocation lease")
	pipelineWindow := flag.Int("pipeline-window", ibp.DefaultPipelineWindow, "in-flight window granted to clients that negotiate pipelined mode, per connection (0 disables PIPELINE; clients fall back to serial)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently executing requests (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission control: max requests waiting for a slot before shedding with BUSY")
	maxQueueWait := flag.Duration("max-queue-wait", 100*time.Millisecond, "admission control: max time a request may queue before shedding with BUSY")
	lboneURL := flag.String("lbone", "", "L-Bone base URL to register with (e.g. http://host:port)")
	x := flag.Float64("x", 0, "network coordinate X for L-Bone proximity")
	y := flag.Float64("y", 0, "network coordinate Y for L-Bone proximity")
	heartbeat := flag.Duration("heartbeat", 10*time.Second, "L-Bone heartbeat interval")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("depotd: %v", err)
	}
	depot, err := ibp.NewDepot(ibp.DepotConfig{Capacity: *capacity, MaxLease: *maxLease, Dir: *dir})
	if err != nil {
		log.Fatalf("depotd: %v", err)
	}
	srv := ibp.NewServer(depot)
	srv.Logf = log.Printf
	// Flag 0 means "off" on the command line; the library spells that as a
	// negative window (its own 0 means "default").
	srv.PipelineWindow = *pipelineWindow
	if *pipelineWindow == 0 {
		srv.PipelineWindow = -1
	}
	if *maxInflight > 0 {
		srv.Admission = overload.NewGate(*maxInflight, *maxQueue, *maxQueueWait)
		fmt.Printf("depotd: admission control: %d in-flight, %d queued, %v max wait\n",
			*maxInflight, *maxQueue, *maxQueueWait)
	}
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("depotd: listen: %v", err)
	}
	fmt.Printf("depotd: serving IBP on %s (capacity %d bytes, max lease %v)\n", bound, *capacity, *maxLease)

	if *metricsAddr != "" {
		obs.Default().RegisterSnapshot("depot", func() map[string]float64 {
			st := depot.Stat()
			return map[string]float64{
				"capacity":    float64(st.Capacity),
				"used":        float64(st.Used),
				"allocations": float64(st.Allocations),
				"expirations": float64(st.Expirations),
				"revocations": float64(st.Revocations),
			}
		})
	}
	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
	})
	if err != nil {
		log.Fatalf("depotd: metrics listen: %v", err)
	}
	if stack.Enabled() {
		fmt.Printf("depotd: metrics on http://%s/metrics\n", stack.Addr())
	}

	stop := make(chan struct{})
	if *lboneURL != "" {
		cl := &lbone.Client{BaseURL: *lboneURL}
		record := func() lbone.DepotRecord {
			st := depot.Stat()
			return lbone.DepotRecord{
				Addr: bound, Kind: lbone.KindDepot, X: *x, Y: *y,
				Capacity: st.Capacity, Free: st.Capacity - st.Used,
				// The metrics address rides the heartbeat so a fleet
				// scraper can discover and scrape this depot without
				// static configuration.
				MetricsAddr: stack.Addr(),
			}
		}
		// Register synchronously once before declaring readiness: a depot
		// nobody can discover is not ready to serve the deployment.
		stack.SetStatus("registering with L-Bone")
		regCtx, regCancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := cl.Register(regCtx, record()); err != nil {
			log.Printf("depotd: initial L-Bone registration: %v (heartbeat will retry)", err)
		}
		regCancel()
		go cl.Heartbeat(record, *heartbeat, stop)
		fmt.Printf("depotd: heartbeating to %s at (%g, %g)\n", *lboneURL, *x, *y)
	}
	stack.MarkReady()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	srv.Close()
	closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	_ = stack.Close(closeCtx)
	cancel()
	st := depot.Stat()
	fmt.Printf("depotd: shutting down; %d allocations, %d/%d bytes used, %d expirations, %d revocations\n",
		st.Allocations, st.Used, st.Capacity, st.Expirations, st.Revocations)
}
