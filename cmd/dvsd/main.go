// Command dvsd runs one level of the Dictionary of View Sets hierarchy.
// Give -parent to chain levels DNS-style; the root level can forward
// misses to registered server agents for on-demand generation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
	"lonviz/internal/overload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6800", "listen address")
	parent := flag.String("parent", "", "parent DVS address (empty for the root)")
	generate := flag.Bool("generate", false, "forward full-hierarchy misses to registered server agents")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently executing requests (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission control: max requests waiting for a slot before shedding with BUSY")
	maxQueueWait := flag.Duration("max-queue-wait", 100*time.Millisecond, "admission control: max time a request may queue before shedding with BUSY")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("dvsd: %v", err)
	}

	srv := dvs.NewServer(*parent)
	if *generate {
		srv.Generate = agent.GenerateFunc(nil)
	}
	if *maxInflight > 0 {
		srv.Admission = overload.NewGate(*maxInflight, *maxQueue, *maxQueueWait)
		fmt.Printf("dvsd: admission control: %d in-flight, %d queued, %v max wait\n",
			*maxInflight, *maxQueue, *maxQueueWait)
	}
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("dvsd: %v", err)
	}
	role := "root"
	if *parent != "" {
		role = "child of " + *parent
	}
	fmt.Printf("dvsd: serving DVS on %s (%s, on-demand generation %v)\n", bound, role, *generate)

	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
	})
	if err != nil {
		log.Fatalf("dvsd: metrics listen: %v", err)
	}
	if stack.Enabled() {
		fmt.Printf("dvsd: metrics on http://%s/metrics\n", stack.Addr())
	}
	stack.MarkReady()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	_ = stack.Close(closeCtx)
	cancel()
}
