// Command lfserve runs the server side of the streaming model: the server
// agent with its generator, uploading view sets to IBP depots and
// registering exNodes with a DVS. With -precompute it publishes the whole
// database up front (the paper's offline path); it always also serves
// on-demand render requests (the paper's run-time path for close-up
// zooms).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/exnode"
	"lonviz/internal/lbone"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
	"lonviz/internal/steward"
	"lonviz/internal/volume"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6900", "server agent listen address")
	depots := flag.String("depots", "", "comma-separated server depot addresses (required)")
	dvsAddr := flag.String("dvs", "", "DVS address (required)")
	dataset := flag.String("dataset", "neghip", "dataset name")
	res := flag.Int("res", 64, "sample view resolution")
	step := flag.Float64("step", 10, "lattice step in degrees")
	l := flag.Int("l", 3, "view set side length")
	volSize := flag.Int("volume", 64, "synthetic volume dimension")
	procedural := flag.Bool("procedural", false, "procedural generator instead of ray casting")
	precompute := flag.Bool("precompute", true, "render and publish the full database at startup")
	storeDir := flag.String("store", "", "serve/cache view sets from this lfgen-compatible directory")
	replicas := flag.Int("replicas", 1, "replicas per stripe across depots")
	maxPending := flag.Int("max-pending", 0, "render scheduler bound: max queued view sets before the oldest is evicted with BUSY (0 = unbounded)")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	runSteward := flag.Bool("steward", false, "run a background steward over the precomputed database (renews leases, repairs replicas)")
	stewardInterval := flag.Duration("steward-interval", time.Minute, "steward scan cycle interval")
	stewardLease := flag.Duration("steward-lease", 30*time.Minute, "lease term for steward renewals and repairs")
	lboneURL := flag.String("lbone", "", "L-Bone base URL for steward repair depot discovery; empty restricts repair to -depots")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if *depots == "" || *dvsAddr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("lfserve: %v", err)
	}
	depotList := strings.Split(*depots, ",")
	p := lightfield.ScaledParams(*step, *l, *res)
	if err := p.Validate(); err != nil {
		log.Fatalf("lfserve: %v", err)
	}

	var gen lightfield.Generator
	if *procedural {
		g, err := lightfield.NewProceduralGenerator(p, *seed)
		if err != nil {
			log.Fatalf("lfserve: %v", err)
		}
		gen = g
	} else {
		vol, err := volume.NegHip(*volSize)
		if err != nil {
			log.Fatalf("lfserve: %v", err)
		}
		g, err := lightfield.NewRaycastGenerator(p, vol, volume.DefaultNegHipTF())
		if err != nil {
			log.Fatalf("lfserve: %v", err)
		}
		gen = g
	}

	if *storeDir != "" {
		store, err := lightfield.NewDirStore(*storeDir, p)
		if err != nil {
			log.Fatalf("lfserve: %v", err)
		}
		gen = &lightfield.FallbackGenerator{Store: store, Live: gen}
		fmt.Printf("lfserve: serving from store %s with live fallback\n", *storeDir)
	}

	sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
		Dataset:    *dataset,
		Gen:        gen,
		Depots:     depotList,
		DVS:        &dvs.Client{Addr: *dvsAddr},
		Replicas:   *replicas,
		MaxPending: *maxPending,
	})
	if err != nil {
		log.Fatalf("lfserve: %v", err)
	}
	defer sa.Close()
	bound, err := sa.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("lfserve: %v", err)
	}
	fmt.Printf("lfserve: server agent for %q on %s, %d depots, DVS %s\n",
		*dataset, bound, len(depotList), *dvsAddr)

	if *metricsAddr != "" {
		sa.RegisterMetrics(nil)
	}
	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
	})
	if err != nil {
		log.Fatalf("lfserve: metrics listen: %v", err)
	}
	if stack.Enabled() {
		fmt.Printf("lfserve: metrics on http://%s/metrics (pprof at /debug/pprof/)\n", stack.Addr())
	}

	// Announce fleet membership: the server agent never serves IBP, so
	// the L-Bone will not hand it out for allocation (kind=agent), but
	// the steward's fleet scraper discovers its metrics address here and
	// folds render/upload health into the cluster view.
	announceStop := make(chan struct{})
	defer close(announceStop)
	if *lboneURL != "" && stack.Enabled() {
		cl := &lbone.Client{BaseURL: *lboneURL}
		record := func() lbone.DepotRecord {
			return lbone.DepotRecord{
				Addr: bound, Kind: lbone.KindAgent, MetricsAddr: stack.Addr(),
			}
		}
		go cl.Heartbeat(record, 10*time.Second, announceStop)
	}

	// Register with the DVS so it can forward misses here.
	stack.SetStatus("registering with DVS")
	dvsClient := &dvs.Client{Addr: *dvsAddr}
	if err := dvsClient.RegisterAgent(context.Background(), *dataset, bound); err != nil {
		log.Printf("lfserve: DVS agent registration failed: %v", err)
	}

	var published map[lightfield.ViewSetID][]byte
	if *precompute {
		stack.SetStatus("precomputing database")
		start := time.Now()
		out, err := sa.PrecomputeAll(context.Background())
		if err != nil {
			log.Fatalf("lfserve: precompute: %v", err)
		}
		published = out
		fmt.Printf("lfserve: published %d view sets in %v\n", len(out), time.Since(start).Round(time.Millisecond))
	}

	// With -steward, adopt everything just published and keep it healthy in
	// the background: lease renewal, replica repair, republication.
	var stw *steward.Steward
	if *runSteward {
		if len(published) == 0 {
			log.Fatalf("lfserve: -steward requires -precompute (nothing to adopt)")
		}
		cfg := steward.Config{
			ReplicationTarget: *replicas,
			LeaseTerm:         *stewardLease,
			ScanInterval:      *stewardInterval,
			Health:            lors.NewHealthTracker(lors.HealthConfig{}),
			Publish: func(ctx context.Context, name string, ex *exnode.ExNode) error {
				xml, err := ex.Marshal()
				if err != nil {
					return err
				}
				return dvsClient.Replace(ctx, dvs.Key{Dataset: *dataset, ViewSet: name}, xml)
			},
			OnEvent: func(ev steward.Event) {
				if ev.Type != steward.EventRenew {
					log.Printf("lfserve: steward: %s", ev)
				}
			},
		}
		if *lboneURL != "" {
			cfg.Locate = steward.LBoneLocator(&lbone.Client{BaseURL: *lboneURL}, 0, 0)
		} else {
			// No directory: repair within the configured depot pool.
			cfg.Locate = func(_ context.Context, n int, _ int64, exclude map[string]bool) ([]string, error) {
				var out []string
				for _, d := range depotList {
					if !exclude[d] {
						out = append(out, d)
					}
				}
				if n > 0 && len(out) > n {
					out = out[:n]
				}
				return out, nil
			}
		}
		stw = steward.New(cfg)
		if *metricsAddr != "" {
			stw.RegisterMetrics(nil)
		}
		for id, xml := range published {
			ex, err := exnode.Unmarshal(xml)
			if err != nil {
				log.Fatalf("lfserve: steward adopt %s: %v", id, err)
			}
			if err := stw.Adopt(id.String(), ex); err != nil {
				log.Fatalf("lfserve: steward adopt %s: %v", id, err)
			}
		}
		// Close the loop: a firing depot alert triggers a targeted audit of
		// that depot's replicas ahead of the periodic cycle.
		stack.Subscribe(steward.AlertTrigger(stw))
		stewCtx, stewCancel := context.WithCancel(context.Background())
		defer stewCancel()
		go func() {
			if err := stw.Run(stewCtx); err != nil && stewCtx.Err() == nil {
				log.Printf("lfserve: steward stopped: %v", err)
			}
		}()
		fmt.Printf("lfserve: steward managing %d view sets (interval %v, target replication %d)\n",
			len(published), *stewardInterval, *replicas)
	}
	stack.MarkReady()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	closeCtx, closeCancel := context.WithTimeout(context.Background(), 3*time.Second)
	_ = stack.Close(closeCtx)
	closeCancel()
	st := sa.Stats()
	fmt.Printf("lfserve: shutting down; rendered %d, uploaded %d (%d bytes), %d DVS updates\n",
		st.Rendered, st.Uploaded, st.BytesSent, st.DVSUpdates)
	if stw != nil {
		ss := stw.Stats()
		fmt.Printf("lfserve: steward: %d cycles, %d renewals, %d/%d repairs, %d pruned, %d republished\n",
			ss.Cycles, ss.LeasesRenewed, ss.RepairsSucceeded, ss.RepairsAttempted, ss.ReplicasPruned, ss.Republishes)
	}
}
