// Command lfgen generates a light field database from a volume dataset:
// the paper's offline generation step (their 32-processor cluster run).
// It renders every sample view with the parallel ray caster (or the fast
// procedural generator with -procedural), compresses each view set with
// zlib, and writes one frame file per view set plus a manifest.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"lonviz/internal/codec"
	"lonviz/internal/lightfield"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
	"lonviz/internal/volume"
)

func main() {
	out := flag.String("out", "lfd", "output directory")
	res := flag.Int("res", 64, "sample view resolution r (paper: 200..600)")
	step := flag.Float64("step", 10, "lattice angular step in degrees (paper: 2.5)")
	l := flag.Int("l", 3, "view set side length l (paper: 6)")
	volSize := flag.Int("volume", 64, "synthetic negHip volume dimension (paper: 64)")
	dataset := flag.String("dataset", "neghip", "dataset: neghip | blobs | shell")
	procedural := flag.Bool("procedural", false, "use the fast procedural generator instead of ray casting")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel generation workers")
	seed := flag.Int64("seed", 1, "seed for synthetic data")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("lfgen: %v", err)
	}
	p := lightfield.ScaledParams(*step, *l, *res)
	if err := p.Validate(); err != nil {
		log.Fatalf("lfgen: %v", err)
	}
	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
	})
	if err != nil {
		log.Fatalf("lfgen: metrics listen: %v", err)
	}
	if stack.Enabled() {
		fmt.Printf("lfgen: metrics on http://%s/metrics (pprof at /debug/pprof/)\n", stack.Addr())
	}
	stack.MarkReady()
	defer func() {
		closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		_ = stack.Close(closeCtx)
		cancel()
	}()
	fmt.Printf("lfgen: lattice %dx%d, %d view sets of %dx%d views at %dx%d px\n",
		p.Rows(), p.Cols(), p.NumViewSets(), *l, *l, *res, *res)
	fmt.Printf("lfgen: uncompressed database %d bytes\n", p.UncompressedDBBytes())

	var gen lightfield.Generator
	if *procedural {
		g, err := lightfield.NewProceduralGenerator(p, *seed)
		if err != nil {
			log.Fatalf("lfgen: %v", err)
		}
		gen = g
	} else {
		var vol *volume.Volume
		var err error
		switch *dataset {
		case "neghip":
			vol, err = volume.NegHip(*volSize)
		case "blobs":
			vol, err = volume.Blobs(*volSize, 12, *seed)
		case "shell":
			vol, err = volume.Shell(*volSize, 0.35, 0.05)
		default:
			log.Fatalf("lfgen: unknown dataset %q", *dataset)
		}
		if err != nil {
			log.Fatalf("lfgen: %v", err)
		}
		g, err := lightfield.NewRaycastGenerator(p, vol, volume.DefaultNegHipTF())
		if err != nil {
			log.Fatalf("lfgen: %v", err)
		}
		gen = g
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("lfgen: %v", err)
	}
	start := time.Now()
	build, err := lightfield.BuildDatabase(context.Background(), gen, *workers)
	if err != nil {
		log.Fatalf("lfgen: build: %v", err)
	}
	var compressed int64
	for id, vs := range build.Sets {
		frame, err := lightfield.EncodeViewSet(vs, p, codec.DefaultCompression)
		if err != nil {
			log.Fatalf("lfgen: encode %v: %v", id, err)
		}
		path := filepath.Join(*out, id.String()+".lvz")
		if err := os.WriteFile(path, frame, 0o644); err != nil {
			log.Fatalf("lfgen: write %s: %v", path, err)
		}
		compressed += int64(len(frame))
	}
	manifest := filepath.Join(*out, "MANIFEST")
	mf, err := os.Create(manifest)
	if err != nil {
		log.Fatalf("lfgen: %v", err)
	}
	fmt.Fprintf(mf, "dataset=%s step=%g l=%d res=%d viewsets=%d uncompressed=%d compressed=%d\n",
		*dataset, *step, *l, *res, p.NumViewSets(), build.UncompressedBytes, compressed)
	mf.Close()

	elapsed := time.Since(start)
	fmt.Printf("lfgen: generated %d view sets in %v with %d workers\n",
		len(build.Sets), elapsed.Round(time.Millisecond), *workers)
	fmt.Printf("lfgen: %d -> %d bytes (%.2fx zlib, lossless)\n",
		build.UncompressedBytes, compressed, float64(build.UncompressedBytes)/float64(compressed))
	fmt.Printf("lfgen: wrote %s\n", *out)
}
