// Command lfbench regenerates the paper's evaluation: every figure of
// "Remote Visualization by Browsing Image Based Databases with Logistical
// Networking" (SC'03), at laptop scale by default.
//
//	lfbench -fig 7      Figure 7: database sizes, compressed/uncompressed
//	lfbench -fig 8      Figure 8: per-access decompression time
//	lfbench -fig 9      Figure 9: client latency per access, 200x200
//	lfbench -fig 10     Figure 10: same at 300x300
//	lfbench -fig 11     Figure 11: same at 500x500
//	lfbench -fig 12     Figure 12: communication latency (log-scale data)
//	lfbench -fig fps    in-text: client rendering frame rate
//	lfbench -fig rates  in-text 4.3: WAN access & hit rates, cases 2 vs 3
//	lfbench -fig all    everything
//	lfbench -quick      small smoke run; writes BENCH_quick.json and exits
//	lfbench -clients N  multi-client fleet benchmark (implies -quick): adds a
//	                    "fleet" section — aggregate fps, per-client p99,
//	                    fairness spread, shed counts — to the report
//
// -csv DIR writes each series as CSV next to the printed tables. -json DIR
// writes a machine-readable BENCH_<name>.json (frames/sec, fetch-latency
// percentiles, cache hit rate) for the latency figures and -quick.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/experiments"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
	"lonviz/internal/obs/slo"
	"lonviz/internal/session"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 7|8|9|10|11|12|fps|rates|qgr|all")
	full := flag.Bool("full", false, "use the paper-scale lattice (2.5 deg, l=6); much slower")
	seed := flag.Int64("seed", 1, "experiment seed")
	accesses := flag.Int("accesses", session.PaperAccessCount, "session length in view set accesses")
	think := flag.Duration("think", 0, "cursor think time (0 = config default)")
	csvDir := flag.String("csv", "", "directory to write CSV series into")
	jsonDir := flag.String("json", ".", "directory to write BENCH_*.json reports into")
	quick := flag.Bool("quick", false, "run a short smoke benchmark, write BENCH_quick.json, verify it parses, and exit")
	clients := flag.Int("clients", 0, "also run a multi-client fleet benchmark with this many concurrent viewers (implies -quick)")
	edgeOn := flag.Bool("edge", false, "also run the edge-fleet benchmark: shared edge cache vs isolated per-client caches, side by side (implies -quick)")
	edgeAddr := flag.String("edge-addr", "", "address of an external lfedged for the -edge shared leg (empty starts an in-process edge)")
	benchName := flag.String("bench-name", "quick", "name for the emitted BENCH_<name>.json in quick/fleet mode")
	compare := flag.String("compare", "", "baseline BENCH_*.json to diff the -quick run against; warns on >20% regressions")
	fleetDebug := flag.String("fleet-debug", "", "metrics address of a scraping steward (-fleet-scrape); its /debug/fleet view is snapshotted into the report's fleet_obs section")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address while the benchmark runs (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		fatal(err)
	}

	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.PaperConfig()
	}
	cfg.Seed = *seed
	cfg.Accesses = *accesses
	if *think > 0 {
		cfg.ThinkTime = *think
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
	})
	if err != nil {
		fatal(err)
	}
	if stack.Enabled() {
		fmt.Printf("lfbench: metrics on http://%s/metrics\n", stack.Addr())
	}
	stack.MarkReady()
	defer func() {
		closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		_ = stack.Close(closeCtx)
		cancel()
	}()

	ctx := context.Background()

	if *quick || *clients > 1 || *edgeOn {
		if err := runQuick(ctx, cfg, *jsonDir, *compare, *benchName, *clients, *edgeOn, *edgeAddr, *fleetDebug); err != nil {
			fatal(err)
		}
		return
	}
	run := func(name string, f func() error) {
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("7") {
		run("Figure 7: light field database sizes", func() error { return fig7(ctx, cfg, *csvDir) })
	}
	if want("8") {
		run("Figure 8: view set decompression time per access", func() error { return fig8(ctx, cfg, *csvDir) })
	}
	for _, fr := range []struct {
		name     string
		paperRes int
	}{{"9", 200}, {"10", 300}, {"11", 500}} {
		if want(fr.name) {
			name := fmt.Sprintf("Figure %s: client latency per access, %dx%d", fr.name, fr.paperRes, fr.paperRes)
			run(name, func() error { return figLatency(ctx, cfg, fr.name, fr.paperRes, *csvDir, *jsonDir) })
		}
	}
	if want("12") {
		run("Figure 12: communication latency per access (log-scale data)", func() error { return fig12(ctx, cfg, *csvDir) })
	}
	if want("fps") {
		run("In-text: client rendering frame rate", func() error { return figFPS(ctx, cfg) })
	}
	if want("rates") {
		run("In-text 4.3: initial-phase WAN access and hit rates", func() error { return figRates(ctx, cfg) })
	}
	if want("qgr") {
		run("In-text 4.2: Quality Guaranteed Rate per case", func() error { return figQGR(ctx, cfg) })
	}
}

func figQGR(ctx context.Context, cfg experiments.Config) error {
	const budget = 50 * time.Millisecond
	results, err := experiments.QGRComparison(ctx, cfg, 300, budget)
	if err != nil {
		return err
	}
	names := map[experiments.Case]string{
		experiments.Case1LAN:    "case 1 (LAN)",
		experiments.Case2WAN:    "case 2 (WAN)",
		experiments.Case3Staged: "case 3 (LAN depot)",
	}
	fmt.Printf("latency budget %v per view set transition:\n", budget)
	fmt.Printf("%-20s %-14s %-14s %-12s\n", "case", "min think", "worst access", "moves/sec")
	for _, r := range results {
		rate := "unattainable"
		if r.MovesPerSecond > 0 {
			rate = fmt.Sprintf("%.1f", r.MovesPerSecond)
		}
		fmt.Printf("%-20s %-14v %-14v %-12s\n", names[r.Case], r.MinThink, r.WorstLatency, rate)
	}
	fmt.Println("paper: case 2's QGR is significantly slower than cases 1 and 3 (section 4.2)")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lfbench:", err)
	os.Exit(1)
}

// benchPercentiles are exact order statistics over one latency series.
type benchPercentiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// benchCase is one deployment case's results inside a bench report.
type benchCase struct {
	Case            string           `json:"case"`
	Accesses        int              `json:"accesses"`
	FramesPerSecond float64          `json:"frames_per_second"`
	FetchLatencyMs  benchPercentiles `json:"fetch_latency_ms"`
	CommLatencyMs   benchPercentiles `json:"comm_latency_ms"`
	CacheHitRate    float64          `json:"cache_hit_rate"`
	Classes         map[string]int   `json:"classes"`
}

// benchFleet is the multi-client section of a bench report: the same
// deployment under N concurrent viewers sharing one client agent.
type benchFleet struct {
	Clients           int       `json:"clients"`
	AccessesPerClient int       `json:"accesses_per_client"`
	Successes         int       `json:"successes"`
	AggregateFPS      float64   `json:"aggregate_fps"`
	PerClientP99Ms    []float64 `json:"per_client_p99_ms"`
	WorstP99Ms        float64   `json:"worst_p99_ms"`
	// FairnessSpread is fastest-client fps over slowest-client fps
	// (1.0 = perfectly fair); -1 records that some client starved
	// completely (the true spread is infinite, which JSON cannot carry).
	FairnessSpread  float64 `json:"fairness_spread"`
	Busy            int     `json:"busy"`
	Expired         int     `json:"expired"`
	Errors          int     `json:"errors"`
	Coalesced       int64   `json:"coalesced"`
	BusyRejections  int64   `json:"busy_rejections"`
	BudgetExhausted int64   `json:"budget_exhausted"`
}

// benchEdge is the edge-fleet section of a bench report: the same fleet
// of clients run twice over identical cursor scripts, once with isolated
// per-client caches and once sharing an edge cache tier.
type benchEdge struct {
	Clients           int `json:"clients"`
	AccessesPerClient int `json:"accesses_per_client"`
	// SharedHitRate counts local hits plus edge hits over all shared-leg
	// accesses (the fleet-aggregate LAN-or-better rate); IsolatedHitRate
	// is the baseline leg's local-cache hit rate.
	SharedHitRate      float64 `json:"shared_hit_rate"`
	IsolatedHitRate    float64 `json:"isolated_hit_rate"`
	SharedWorstP99Ms   float64 `json:"shared_worst_p99_ms"`
	IsolatedWorstP99Ms float64 `json:"isolated_worst_p99_ms"`
	EdgeHits           int64   `json:"edge_hits"`
	EdgeFills          int64   `json:"edge_fills"`
	// WANFetches counts shared-leg accesses the agents still had to serve
	// from the WAN depots directly (edge down or failed over).
	WANFetches int64 `json:"wan_fetches"`
	// Classes is the shared leg's access-class breakdown.
	Classes map[string]int `json:"classes"`
	// External records a run against an external lfedged (edge hit/fill
	// counters are not visible in-process then and read 0 here).
	External bool `json:"external,omitempty"`
}

// benchReport is the machine-readable BENCH_<name>.json document. The
// runtime section is the process's own fingerprint over the run
// (allocator throughput, GC pauses, goroutine peak), so a latency
// regression in a later diff carries its likely runtime cause along.
type benchReport struct {
	Name        string         `json:"name"`
	GeneratedAt string         `json:"generated_at"`
	Cases       []benchCase    `json:"cases"`
	Fleet       *benchFleet    `json:"fleet,omitempty"`
	Edge        *benchEdge     `json:"edge,omitempty"`
	Runtime     *prof.Summary  `json:"runtime,omitempty"`
	FleetObs    *benchFleetObs `json:"fleet_obs,omitempty"`
}

// benchFleetObs is the cluster-observability context of a run: a
// scraping steward's /debug/fleet view snapshotted as the benchmark
// finishes, so a perf diff carries the fleet health it ran against (a
// degraded depot or a firing coverage alert explains a latency shift
// better than the numbers alone).
type benchFleetObs struct {
	Source          string             `json:"source"`
	MembersUp       int                `json:"members_up"`
	MembersDegraded int                `json:"members_degraded"`
	MembersDown     int                `json:"members_down"`
	Firing          int                `json:"firing"`
	Aggregates      map[string]float64 `json:"aggregates,omitempty"`
}

// fetchFleetObs pulls and condenses one /debug/fleet document; a nil
// return (unreachable steward, bad payload) just omits the section.
func fetchFleetObs(addr string) *benchFleetObs {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(strings.TrimSuffix(base, "/") + "/debug/fleet")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var doc struct {
		Members []struct {
			State string `json:"state"`
		} `json:"members"`
		Aggregates map[string]float64 `json:"aggregates"`
		Firing     int                `json:"firing"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&doc); err != nil {
		return nil
	}
	out := &benchFleetObs{Source: addr, Firing: doc.Firing}
	for _, m := range doc.Members {
		switch m.State {
		case "up":
			out.MembersUp++
		case "degraded":
			out.MembersDegraded++
		default:
			out.MembersDown++
		}
	}
	// Keep only the cluster-level aggregates; the per-node mirrors are
	// matrix detail a report diff does not want.
	for k, v := range doc.Aggregates {
		if strings.Contains(k, "{") {
			continue
		}
		if out.Aggregates == nil {
			out.Aggregates = make(map[string]float64)
		}
		out.Aggregates[k] = v
	}
	return out
}

func summarizeEdge(er *experiments.EdgeFleetRun) *benchEdge {
	classes := make(map[string]int)
	for class, n := range er.Shared.ClassCounts() {
		classes[class.String()] = n
	}
	return &benchEdge{
		Clients:            er.Clients,
		AccessesPerClient:  er.Accesses,
		SharedHitRate:      er.SharedHitRate(),
		IsolatedHitRate:    er.IsolatedHitRate(),
		SharedWorstP99Ms:   er.Shared.WorstP99Ms(),
		IsolatedWorstP99Ms: er.Isolated.WorstP99Ms(),
		EdgeHits:           er.EdgeStats.Hits,
		EdgeFills:          er.EdgeStats.Fills,
		WANFetches:         er.SharedAgents.WANFetches,
		Classes:            classes,
		External:           er.External,
	}
}

func summarizeFleet(fr *experiments.FleetRun) *benchFleet {
	out := &benchFleet{
		Clients:           fr.Clients,
		AccessesPerClient: fr.Accesses,
		Successes:         fr.Result.Accesses(),
		AggregateFPS:      fr.Result.AggregateFPS(),
		WorstP99Ms:        fr.Result.WorstP99Ms(),
		FairnessSpread:    fr.Result.FairnessSpread(),
		Coalesced:         fr.Agent.Coalesced,
		BusyRejections:    fr.Agent.BusyRejections,
		BudgetExhausted:   fr.Agent.BudgetExhausted,
	}
	if math.IsInf(out.FairnessSpread, 1) {
		out.FairnessSpread = -1
	}
	for _, r := range fr.Result.Runs {
		out.PerClientP99Ms = append(out.PerClientP99Ms, r.P99Ms())
		out.Busy += r.Busy
		out.Expired += r.Expired
		out.Errors += r.Errors
	}
	return out
}

var caseNames = map[experiments.Case]string{
	experiments.Case1LAN:    "case1_lan",
	experiments.Case2WAN:    "case2_wan",
	experiments.Case3Staged: "case3_landepot",
}

// exactPercentile returns the q-quantile (0..1) by nearest-rank over a
// sorted copy of xs.
func exactPercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func percentilesMs(seconds []float64) benchPercentiles {
	sorted := append([]float64(nil), seconds...)
	sort.Float64s(sorted)
	return benchPercentiles{
		P50: exactPercentile(sorted, 0.50) * 1e3,
		P95: exactPercentile(sorted, 0.95) * 1e3,
		P99: exactPercentile(sorted, 0.99) * 1e3,
	}
}

func summarizeCase(r experiments.CaseRun) benchCase {
	total := session.TotalSeconds(r.Records)
	sum := 0.0
	for _, s := range total {
		sum += s
	}
	fps := 0.0
	if sum > 0 {
		fps = float64(len(r.Records)) / sum
	}
	counts := session.ClassCounts(r.Records)
	classes := make(map[string]int, len(counts))
	for class, n := range counts {
		classes[class.String()] = n
	}
	hitRate := 0.0
	if len(r.Records) > 0 {
		hitRate = float64(counts[agent.AccessHit]) / float64(len(r.Records))
	}
	return benchCase{
		Case:            caseNames[r.Case],
		Accesses:        len(r.Records),
		FramesPerSecond: fps,
		FetchLatencyMs:  percentilesMs(total),
		CommLatencyMs:   percentilesMs(session.CommSeconds(r.Records)),
		CacheHitRate:    hitRate,
		Classes:         classes,
	}
}

// writeBenchJSON renders runs into BENCH_<name>.json under dir and returns
// the file path. fleet and edge are optional.
func writeBenchJSON(dir, name string, runs []experiments.CaseRun, fleet *benchFleet, edge *benchEdge, rt *prof.Summary, fleetObs *benchFleetObs) (string, error) {
	report := benchReport{
		Name:        name,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Fleet:       fleet,
		Edge:        edge,
		Runtime:     rt,
		FleetObs:    fleetObs,
	}
	for _, r := range runs {
		report.Cases = append(report.Cases, summarizeCase(r))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	fmt.Printf("lfbench: wrote %s\n", path)
	return path, nil
}

// runQuick is the CI smoke mode: a short three-case run at one resolution,
// reported as BENCH_<name>.json and re-read to prove the file parses. With a
// baseline it also diffs the fresh report against it (warn-only). With
// clients > 1 it additionally runs the multi-client fleet benchmark and
// records the fleet section alongside the standard single-client cases.
func runQuick(ctx context.Context, cfg experiments.Config, jsonDir, baseline, name string, clients int, edgeOn bool, edgeAddr, fleetDebug string) error {
	if jsonDir == "" {
		jsonDir = "."
	}
	if name == "" {
		name = "quick"
	}
	// With a baseline, match its session length and keep the configured
	// cursor pacing so the diff is apples-to-apples (a short, unpaced
	// session has a different cache-hit tail and starves prestaging,
	// which would warn on every run). Without one, keep the smoke run as
	// short as possible.
	if bl, err := readBenchReport(baseline); err == nil && len(bl.Cases) > 0 && bl.Cases[0].Accesses > 0 {
		cfg.Accesses = bl.Cases[0].Accesses
	} else {
		if cfg.Accesses > 24 {
			cfg.Accesses = 24
		}
		cfg.ThinkTime = 0
	}
	start := time.Now()
	// Collect the process's runtime fingerprint across every experiment
	// in the run, so the report's runtime section reflects the same work
	// the case numbers describe.
	collector := prof.StartSummary(0)
	runs, err := experiments.LatencyExperiment(ctx, cfg, 200)
	if err != nil {
		return err
	}
	var fleet *benchFleet
	if clients > 1 {
		fr, err := experiments.FleetExperiment(ctx, cfg, 200, clients)
		if err != nil {
			return err
		}
		fleet = summarizeFleet(fr)
		fmt.Printf("lfbench: fleet %d clients x %d accesses: %.1f aggregate fps, worst p99 %.1f ms, spread %.2f, busy=%d expired=%d errors=%d coalesced=%d\n",
			fleet.Clients, fleet.AccessesPerClient, fleet.AggregateFPS, fleet.WorstP99Ms,
			fleet.FairnessSpread, fleet.Busy, fleet.Expired, fleet.Errors, fleet.Coalesced)
	}
	// The edge comparison also runs when the baseline carries one, so a
	// plain -compare run keeps diffing the edge section it was given.
	var edge *benchEdge
	var baseEdge *benchEdge
	if bl, err := readBenchReport(baseline); err == nil {
		baseEdge = bl.Edge
	}
	if edgeOn || baseEdge != nil {
		edgeClients := clients
		if baseEdge != nil && baseEdge.Clients > 0 {
			edgeClients = baseEdge.Clients
		}
		if edgeClients <= 1 {
			edgeClients = 10
		}
		er, err := experiments.EdgeFleetExperiment(ctx, cfg, 200, experiments.EdgeFleetOptions{
			Clients:    edgeClients,
			EdgeAddr:   edgeAddr,
			Trajectory: true,
		})
		if err != nil {
			return err
		}
		edge = summarizeEdge(er)
		fmt.Printf("lfbench: edge fleet %d clients x %d accesses: hit rate shared=%.2f isolated=%.2f, worst p99 shared=%.1fms isolated=%.1fms, edge hits=%d fills=%d, wan fetches=%d\n",
			edge.Clients, edge.AccessesPerClient, edge.SharedHitRate, edge.IsolatedHitRate,
			edge.SharedWorstP99Ms, edge.IsolatedWorstP99Ms, edge.EdgeHits, edge.EdgeFills, edge.WANFetches)
	}
	rt := collector.Stop()
	fmt.Printf("lfbench: runtime: alloc=%.1fMB/s gc_pause_p99=%.3fms gc_cycles=%d peak_goroutines=%d over %.1fs\n",
		rt.AllocRateMBs, rt.GCPauseP99Ms, rt.GCCycles, rt.PeakGoroutines, rt.DurationSec)
	var fleetObs *benchFleetObs
	if fleetDebug != "" {
		if fleetObs = fetchFleetObs(fleetDebug); fleetObs == nil {
			fmt.Printf("lfbench: fleet obs: no /debug/fleet at %s (section omitted)\n", fleetDebug)
		} else {
			fmt.Printf("lfbench: fleet obs: %d up / %d degraded / %d down, %d alert(s) firing\n",
				fleetObs.MembersUp, fleetObs.MembersDegraded, fleetObs.MembersDown, fleetObs.Firing)
		}
	}
	path, err := writeBenchJSON(jsonDir, name, runs, fleet, edge, &rt, fleetObs)
	if err != nil {
		return err
	}
	// Self-verify: the emitted report must round-trip and carry the keys
	// scripts/check.sh depends on.
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var back benchReport
	if err := json.Unmarshal(data, &back); err != nil {
		return fmt.Errorf("%s does not parse: %w", path, err)
	}
	if len(back.Cases) == 0 {
		return fmt.Errorf("%s has no cases", path)
	}
	for _, c := range back.Cases {
		if c.Accesses == 0 || c.FramesPerSecond <= 0 {
			return fmt.Errorf("%s case %q is empty", path, c.Case)
		}
	}
	if clients > 1 && (back.Fleet == nil || back.Fleet.Successes == 0) {
		return fmt.Errorf("%s fleet section is empty", path)
	}
	if edge != nil && (back.Edge == nil || back.Edge.SharedHitRate <= 0) {
		return fmt.Errorf("%s edge section is empty", path)
	}
	fmt.Printf("lfbench: quick run ok: %d cases, %d accesses each, %.1fs total\n",
		len(back.Cases), back.Cases[0].Accesses, time.Since(start).Seconds())
	if baseline != "" {
		if err := compareReports(baseline, back); err != nil {
			return err
		}
	}
	return nil
}

// readBenchReport loads and parses one BENCH_*.json.
func readBenchReport(path string) (benchReport, error) {
	var r benchReport
	if path == "" {
		return r, fmt.Errorf("compare baseline: no path")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("compare baseline: %w", err)
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("compare baseline %s does not parse: %w", path, err)
	}
	return r, nil
}

// compareReports diffs a fresh bench report against a committed baseline.
// Most metrics print WARN lines past a 20% regression and never fail the
// run — micro benchmarks on shared CI machines are too noisy to gate on,
// but a persistent warning in every run is hard to ignore. One exception
// gates hard: the LAN case's frames_per_second runs with no simulated WAN
// in the path, so it is the stable throughput signature of the zero-copy
// data plane, and a >10% drop fails the run (and check.sh with it).
func compareReports(baselinePath string, current benchReport) error {
	base, err := readBenchReport(baselinePath)
	if err != nil {
		return err
	}
	baseCases := make(map[string]benchCase, len(base.Cases))
	for _, c := range base.Cases {
		baseCases[c.Case] = c
	}
	const tolerance = 1.20 // warn past a 20% regression
	regressions := 0
	// warnSlower flags metrics where bigger is worse (latencies).
	warnSlower := func(kase, metric string, baseV, curV float64) {
		if baseV > 0 && curV > baseV*tolerance {
			fmt.Printf("lfbench: WARN %s %s regressed %.1f%%: %.3f -> %.3f\n",
				kase, metric, 100*(curV/baseV-1), baseV, curV)
			regressions++
		}
	}
	// warnFaster flags metrics where smaller is worse (throughput).
	warnFaster := func(kase, metric string, baseV, curV float64) {
		if baseV > 0 && curV < baseV/tolerance {
			fmt.Printf("lfbench: WARN %s %s regressed %.1f%%: %.3f -> %.3f\n",
				kase, metric, 100*(1-curV/baseV), baseV, curV)
			regressions++
		}
	}
	compared := 0
	for _, c := range current.Cases {
		b, ok := baseCases[c.Case]
		if !ok {
			fmt.Printf("lfbench: WARN case %q missing from baseline %s\n", c.Case, baselinePath)
			continue
		}
		compared++
		warnFaster(c.Case, "frames_per_second", b.FramesPerSecond, c.FramesPerSecond)
		warnSlower(c.Case, "fetch_latency_ms.p50", b.FetchLatencyMs.P50, c.FetchLatencyMs.P50)
		warnSlower(c.Case, "fetch_latency_ms.p95", b.FetchLatencyMs.P95, c.FetchLatencyMs.P95)
		warnSlower(c.Case, "fetch_latency_ms.p99", b.FetchLatencyMs.P99, c.FetchLatencyMs.P99)
	}
	if compared == 0 {
		return fmt.Errorf("compare: no cases in common with baseline %s", baselinePath)
	}
	// Hard gate (see the function comment): >10% LAN throughput regression
	// is an error, not a warning.
	const lanGate = 1.10
	if b, ok := baseCases["case1_lan"]; ok && b.FramesPerSecond > 0 {
		for _, c := range current.Cases {
			if c.Case == "case1_lan" && c.FramesPerSecond < b.FramesPerSecond/lanGate {
				return fmt.Errorf("compare: case1_lan frames_per_second regressed %.1f%% (%.2f -> %.2f), past the 10%% hard gate",
					100*(1-c.FramesPerSecond/b.FramesPerSecond), b.FramesPerSecond, c.FramesPerSecond)
			}
		}
	}
	// Fleet sections only diff like-for-like: same client count, both runs
	// actually produced one (a plain -quick run against a fleet baseline
	// just skips this block).
	if base.Fleet != nil && current.Fleet != nil && base.Fleet.Clients == current.Fleet.Clients {
		warnFaster("fleet", "aggregate_fps", base.Fleet.AggregateFPS, current.Fleet.AggregateFPS)
		warnSlower("fleet", "worst_p99_ms", base.Fleet.WorstP99Ms, current.Fleet.WorstP99Ms)
		if base.Fleet.FairnessSpread > 0 && current.Fleet.FairnessSpread > 0 {
			warnSlower("fleet", "fairness_spread", base.Fleet.FairnessSpread, current.Fleet.FairnessSpread)
		}
	}
	// Edge sections likewise diff only like-for-like fleets.
	if base.Edge != nil && current.Edge != nil && base.Edge.Clients == current.Edge.Clients {
		warnFaster("edge", "shared_hit_rate", base.Edge.SharedHitRate, current.Edge.SharedHitRate)
		warnSlower("edge", "shared_worst_p99_ms", base.Edge.SharedWorstP99Ms, current.Edge.SharedWorstP99Ms)
	}
	// Runtime fingerprints diff warn-only: allocator throughput, GC pause
	// tail, and goroutine peak are the usual suspects behind a latency
	// warning above, so surface their drift in the same breath.
	if base.Runtime != nil && current.Runtime != nil {
		warnSlower("runtime", "alloc_rate_mb_s", base.Runtime.AllocRateMBs, current.Runtime.AllocRateMBs)
		warnSlower("runtime", "gc_pause_p99_ms", base.Runtime.GCPauseP99Ms, current.Runtime.GCPauseP99Ms)
		warnSlower("runtime", "peak_goroutines", float64(base.Runtime.PeakGoroutines), float64(current.Runtime.PeakGoroutines))
	}
	if regressions == 0 {
		fmt.Printf("lfbench: compare vs %s ok (%d cases within 20%%)\n", baselinePath, compared)
	} else {
		fmt.Printf("lfbench: compare vs %s: %d regression warning(s)\n", baselinePath, regressions)
	}
	return nil
}

func fig7(ctx context.Context, cfg experiments.Config, csvDir string) error {
	rows, err := experiments.Fig7(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-22s %-22s %-8s %-14s\n",
		"pixel res", "uncompressed (GB)*", "compressed (GB)*", "ratio", "avg set (MB)*")
	for _, r := range rows {
		fmt.Printf("%dx%-6d %-22.2f %-22.2f %-8.2f %-14.2f\n",
			r.PaperRes, r.PaperRes, r.PaperScaleUncompressedGB, r.PaperScaleCompressedGB, r.Ratio, r.AvgViewSetMB)
	}
	fmt.Println("* paper-scale lattice (144x72, 4 B/px accounting); ratios measured on this build's data")
	fmt.Println("paper reports: 1.5-14 GB uncompressed, 5-7x ratios, <= ~2 GB compressed, 1.2-7.8 MB view sets")
	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "fig7.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "res,uncompressed_gb,compressed_gb,ratio,avg_viewset_mb")
		for _, r := range rows {
			fmt.Fprintf(f, "%d,%.3f,%.3f,%.3f,%.3f\n",
				r.PaperRes, r.PaperScaleUncompressedGB, r.PaperScaleCompressedGB, r.Ratio, r.AvgViewSetMB)
		}
	}
	return nil
}

func fig8(ctx context.Context, cfg experiments.Config, csvDir string) error {
	series, err := experiments.Fig8(ctx, cfg)
	if err != nil {
		return err
	}
	resList := experiments.LatencyResolutions
	fmt.Printf("decompression seconds per access (resolutions %v, scaled /4):\n", resList)
	printAlignedSeries(resList, series)
	fmt.Println("paper reports: sub-second below 400x400, growing with resolution")
	if csvDir != "" {
		return writeResSeriesCSV(filepath.Join(csvDir, "fig8.csv"), resList, series)
	}
	return nil
}

func figLatency(ctx context.Context, cfg experiments.Config, figName string, paperRes int, csvDir, jsonDir string) error {
	runs, err := experiments.LatencyExperiment(ctx, cfg, paperRes)
	if err != nil {
		return err
	}
	var series [][]float64
	headers := []string{"case1_lan", "case2_wan", "case3_landepot"}
	for _, r := range runs {
		series = append(series, session.TotalSeconds(r.Records))
	}
	printCaseSeries(headers, series)
	summarizeCases(headers, runs)
	if jsonDir != "" {
		if _, err := writeBenchJSON(jsonDir, "fig"+figName, runs, nil, nil, nil, nil); err != nil {
			return err
		}
	}
	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "fig"+figName+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return session.WriteSeriesCSV(f, headers, series...)
	}
	return nil
}

func fig12(ctx context.Context, cfg experiments.Config, csvDir string) error {
	for _, paperRes := range experiments.LatencyResolutions {
		runs, err := experiments.LatencyExperiment(ctx, cfg, paperRes)
		if err != nil {
			return err
		}
		fmt.Printf("-- %dx%d (communication latency seconds) --\n", paperRes, paperRes)
		headers := []string{"case1_lan", "case2_wan", "case3_landepot"}
		var series [][]float64
		for _, r := range runs {
			series = append(series, session.CommSeconds(r.Records))
		}
		printCaseSeries(headers, series)
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, fmt.Sprintf("fig12_%d.csv", paperRes)))
			if err != nil {
				return err
			}
			if err := session.WriteSeriesCSV(f, headers, series...); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
	}
	fmt.Println("paper reports orders: hit ~1e-4 s << LAN depot ~1e-2..1e-1 s << WAN ~1 s")
	return nil
}

func figFPS(ctx context.Context, cfg experiments.Config) error {
	results, err := experiments.ClientFPS(ctx, cfg, []int{50, 75, 125, 200, 500})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-14s %-14s\n", "display res", "lookup fps", "blend fps")
	for _, r := range results {
		fmt.Printf("%-12d %-14.1f %-14.1f\n", r.DisplayRes, r.FPS, r.BlendFPS)
	}
	fmt.Println("paper reports: above 30 fps even at 500x500 (nearest-sample table lookup)")
	return nil
}

func figRates(ctx context.Context, cfg experiments.Config) error {
	r, err := experiments.Rates(ctx, cfg, 500)
	if err != nil {
		return err
	}
	fmt.Printf("initial phase length: case2=%d accesses, case3=%d accesses (paper: case3 ~33 at 500x500)\n",
		r.InitialPhase2, r.InitialPhase3)
	fmt.Printf("first-half WAN access rate: case2=%.0f%%, case3=%.0f%% (paper initial phase: 69%% vs 28%%)\n",
		100*r.WANRate2, 100*r.WANRate3)
	fmt.Printf("session hit rate: case2=%.0f%%, case3=%.0f%% (paper: 28%% vs 33%%)\n",
		100*r.HitRate2, 100*r.HitRate3)
	return nil
}

func printCaseSeries(headers []string, series [][]float64) {
	fmt.Printf("%-7s", "access")
	for _, h := range headers {
		fmt.Printf(" %-15s", h)
	}
	fmt.Println()
	n := len(series[0])
	for i := 0; i < n; i++ {
		fmt.Printf("%-7d", i+1)
		for _, s := range series {
			// Six decimals: Figure 12 is read on a log scale where cache
			// hits live around 1e-5..1e-4 seconds.
			fmt.Printf(" %-15.6f", s[i])
		}
		fmt.Println()
	}
}

func printAlignedSeries(resList []int, series map[int][]float64) {
	fmt.Printf("%-7s", "access")
	for _, r := range resList {
		fmt.Printf(" %-12d", r)
	}
	fmt.Println()
	n := len(series[resList[0]])
	for i := 0; i < n; i++ {
		fmt.Printf("%-7d", i+1)
		for _, r := range resList {
			fmt.Printf(" %-12.4f", series[r][i])
		}
		fmt.Println()
	}
}

func writeResSeriesCSV(path string, resList []int, series map[int][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	headers := make([]string, len(resList))
	ordered := make([][]float64, len(resList))
	for i, r := range resList {
		headers[i] = fmt.Sprintf("res%d", r)
		ordered[i] = series[r]
	}
	return session.WriteSeriesCSV(f, headers, ordered...)
}

func summarizeCases(headers []string, runs []experiments.CaseRun) {
	for i, r := range runs {
		counts := session.ClassCounts(r.Records)
		mean := 0.0
		for _, s := range session.TotalSeconds(r.Records) {
			mean += s
		}
		mean /= float64(len(r.Records))
		fmt.Printf("summary %-15s mean=%.4fs classes=%v initial_phase=%d\n",
			headers[i], mean, counts, session.InitialPhaseLength(r.Records))
	}
}
