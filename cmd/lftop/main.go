// Command lftop is a live terminal dashboard over the stack's /metrics
// and /debug/traces endpoints: the "top" for a Logistical Networking
// deployment. Point it at one or more observability addresses (depotd,
// lfserve, lfbrowse, dvsd, ... started with -metrics-addr) and it shows,
// refreshed in place:
//
//   - per-depot IBP round-trip p50/p95/p99 and operation error counts
//   - LoRS failover pressure and circuit-breaker state
//   - client agent cache hit rate and fetch frame rate
//   - overload control: admission in-flight/queue depth, shed rate,
//     request-coalesce hit rate, retry-budget refusals
//   - the slowest recent traces, so "why was that frame slow" is one
//     glance, not a log dig
//
// With -once it polls a single time and exits; with -json it emits the
// summary as one machine-readable JSON document instead of the dashboard
// (the CI smoke runs `lftop -once -json <addr>`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"lonviz/internal/obs"
)

func main() {
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "poll once, print, and exit")
	asJSON := flag.Bool("json", false, "emit one JSON summary document instead of the dashboard")
	nTraces := flag.Int("traces", 5, "slowest recent traces to show per target")
	history := flag.Bool("history", false, "show per-depot latency sparklines from each target's /debug/tsdb history")
	fleetMode := flag.Bool("fleet", false, "fleet mode: targets are scraping stewards; show each one's /debug/fleet health matrix with per-node sparklines from the cluster TSDB")
	histWindow := flag.Duration("history-window", 5*time.Minute, "how far back -history looks")
	waitReady := flag.Duration("wait-ready", 0, "poll each target's /readyz until it reports ready, up to this long, before the first sample (0 disables)")
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lftop [-interval d] [-once] [-json] [-traces n] [-history] [-wait-ready d] <host:port> [host:port ...]")
		fmt.Fprintln(os.Stderr, "  each target is a -metrics-addr endpoint of depotd/dvsd/lboned/lfserve/lfbrowse/lfsteward")
		os.Exit(2)
	}

	top := &lftop{
		client:     &http.Client{Timeout: 5 * time.Second},
		targets:    targets,
		nTraces:    *nTraces,
		history:    *history,
		histWindow: *histWindow,
		prev:       make(map[string]frameSample, len(targets)),
	}

	if *waitReady > 0 {
		if err := top.waitReady(*waitReady); err != nil {
			fmt.Fprintln(os.Stderr, "lftop:", err)
			os.Exit(1)
		}
	}

	if *fleetMode {
		runFleet(top, *once, *asJSON, *interval)
		return
	}

	if *once {
		sums := top.poll()
		if *asJSON {
			if err := writeJSON(os.Stdout, sums); err != nil {
				fmt.Fprintln(os.Stderr, "lftop:", err)
				os.Exit(1)
			}
		} else {
			render(os.Stdout, sums, false)
		}
		// Exit nonzero if nothing answered at all: a smoke run against a
		// dead endpoint should fail loudly.
		for _, s := range sums {
			if s.Err == "" {
				return
			}
		}
		fmt.Fprintln(os.Stderr, "lftop: no target reachable")
		os.Exit(1)
	}

	for {
		sums := top.poll()
		if *asJSON {
			if err := writeJSON(os.Stdout, sums); err != nil {
				fmt.Fprintln(os.Stderr, "lftop:", err)
				os.Exit(1)
			}
		} else {
			render(os.Stdout, sums, true)
		}
		time.Sleep(*interval)
	}
}

// runFleet is the -fleet main loop: poll every steward's /debug/fleet,
// render the health matrices, repeat (or once).
func runFleet(top *lftop, once, asJSON bool, interval time.Duration) {
	for {
		sums := make([]fleetSummary, 0, len(top.targets))
		for _, ep := range top.targets {
			sums = append(sums, top.pollFleet(ep))
		}
		if asJSON {
			if err := writeFleetJSON(os.Stdout, sums); err != nil {
				fmt.Fprintln(os.Stderr, "lftop:", err)
				os.Exit(1)
			}
		} else {
			renderFleet(os.Stdout, sums, !once)
		}
		if once {
			for _, s := range sums {
				if s.Err == "" {
					return
				}
			}
			fmt.Fprintln(os.Stderr, "lftop: no steward reachable")
			os.Exit(1)
		}
		time.Sleep(interval)
	}
}

func writeJSON(w io.Writer, sums []targetSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Targets []targetSummary `json:"targets"`
	}{sums})
}

// lftop polls a fixed target list and remembers the previous frame count
// per target so it can report a frames/sec rate between refreshes.
type lftop struct {
	client     *http.Client
	targets    []string
	nTraces    int
	history    bool
	histWindow time.Duration
	prev       map[string]frameSample
}

type frameSample struct {
	frames int64
	shed   float64
	at     time.Time
}

// depotStat is one depot's round-trip latency line, from the
// ibp.depot.ms{depot=...} histogram family.
type depotStat struct {
	Depot string  `json:"depot"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	// Exemplar is the trace ID of the slowest-bucket sample the histogram
	// retained — paste it against /debug/traces to see why the tail is
	// the tail.
	Exemplar string `json:"exemplar,omitempty"`
}

// alertLine is one SLO alert from /debug/alerts.
type alertLine struct {
	Rule      string  `json:"rule"`
	Severity  string  `json:"severity"`
	Instance  string  `json:"instance,omitempty"`
	State     string  `json:"state"`
	Since     string  `json:"since"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

// historyLine is one series' recent history from /debug/tsdb, rendered as
// a sparkline over the -history-window.
type historyLine struct {
	Series string  `json:"series"`
	Points int     `json:"points"`
	LastMs float64 `json:"last_ms"`
	MaxMs  float64 `json:"max_ms"`
	Spark  string  `json:"spark"`
}

// loadStat is the overload-control pane: admission gate occupancy and
// shed/coalesce accounting summed across the target's layers (depot, DVS,
// render agent, client agent).
type loadStat struct {
	InFlight   float64 `json:"in_flight"`
	QueueDepth float64 `json:"queue_depth"`
	// Shed totals every BUSY rejection the target made (ibp.shed +
	// dvs.shed + agent.render.shed, all reasons); ShedPerSecond is its
	// rate between refreshes.
	Shed          float64 `json:"shed"`
	ShedPerSecond float64 `json:"shed_per_second"`
	Coalesced     float64 `json:"coalesced"`
	// CoalesceHitRate is coalesced / (coalesced + fetches): the share of
	// view-set requests that piggybacked instead of transferring.
	CoalesceHitRate      float64 `json:"coalesce_hit_rate"`
	BusyRejections       float64 `json:"busy_rejections"`
	RetryBudgetExhausted float64 `json:"retry_budget_exhausted"`
}

// hotSetLine is one view set from the edge cache's popularity tracker
// (the edge.hot.* snapshot keys), with its decayed access count.
type hotSetLine struct {
	ViewSet string  `json:"view_set"`
	Count   float64 `json:"count"`
}

// edgeStat is the edge-cache pane, present when the target exports the
// edge.* families (an lfedged, or anything embedding edge.Cache).
type edgeStat struct {
	CapacityBytes float64      `json:"capacity_bytes"`
	UsedBytes     float64      `json:"used_bytes"`
	Entries       float64      `json:"entries"`
	Evictions     float64      `json:"evictions"`
	HitRate       float64      `json:"hit_rate"`
	Hits          float64      `json:"hits"`
	Misses        float64      `json:"misses"`
	Fills         float64      `json:"fills"`
	FillErrors    float64      `json:"fill_errors"`
	HotSet        []hotSetLine `json:"hot_set,omitempty"`
}

// runtimeStat is the Go-runtime health pane, from the runtime.* families
// the prof harvester samples (present on any target with -metrics-addr).
type runtimeStat struct {
	HeapLiveMB    float64 `json:"heap_live_mb"`
	HeapGoalMB    float64 `json:"heap_goal_mb"`
	Goroutines    float64 `json:"goroutines"`
	GCPauses      int64   `json:"gc_pauses"`
	GCPauseP99Ms  float64 `json:"gc_pause_p99_ms"`
	SchedLatP99Ms float64 `json:"sched_latency_p99_ms"`
	MutexWaitMs   float64 `json:"mutex_wait_ms"`
	GCCycles      float64 `json:"gc_cycles"`
}

// captureLine is one forensic bundle from the flight recorder's
// /debug/capture index.
type captureLine struct {
	ID      string `json:"id"`
	Time    string `json:"time"`
	Trigger string `json:"trigger"`
	Files   int    `json:"files"`
	Bytes   int    `json:"bytes"`
}

// traceLine is one root span from /debug/traces, slowest-first.
type traceLine struct {
	TraceID string  `json:"trace_id"`
	Name    string  `json:"name"`
	Ms      float64 `json:"ms"`
	Spans   int     `json:"spans"`
}

// targetSummary is everything lftop shows for one endpoint; it doubles as
// the -json schema.
type targetSummary struct {
	Endpoint        string             `json:"endpoint"`
	Err             string             `json:"err,omitempty"`
	Depots          []depotStat        `json:"depots,omitempty"`
	OpErrors        map[string]float64 `json:"op_errors,omitempty"`
	FailedAttempts  float64            `json:"failed_attempts"`
	RetryPasses     float64            `json:"retry_passes"`
	CircuitOpen     float64            `json:"circuit_open"`
	CircuitTrips    float64            `json:"circuit_trips"`
	CacheHitRate    float64            `json:"cache_hit_rate"`
	Frames          int64              `json:"frames"`
	FrameMeanMs     float64            `json:"frame_mean_ms"`
	FramesPerSecond float64            `json:"frames_per_second"`
	Load            loadStat           `json:"load"`
	Runtime         *runtimeStat       `json:"runtime,omitempty"`
	Captures        []captureLine      `json:"captures,omitempty"`
	Edge            *edgeStat          `json:"edge,omitempty"`
	SlowTraces      []traceLine        `json:"slow_traces,omitempty"`
	AlertsFiring    int                `json:"alerts_firing"`
	Alerts          []alertLine        `json:"alerts,omitempty"`
	History         []historyLine      `json:"history,omitempty"`
}

func (t *lftop) poll() []targetSummary {
	out := make([]targetSummary, 0, len(t.targets))
	for _, ep := range t.targets {
		out = append(out, t.pollOne(ep))
	}
	return out
}

// baseURL normalizes a target argument into an http base URL.
func baseURL(ep string) string {
	base := ep
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimSuffix(base, "/")
}

func (t *lftop) pollOne(ep string) targetSummary {
	sum := targetSummary{Endpoint: ep}
	base := baseURL(ep)

	snap, err := t.fetchMetrics(base + "/metrics")
	if err != nil {
		sum.Err = err.Error()
		return sum
	}
	summarizeMetrics(snap, &sum)

	now := time.Now()
	if prev, ok := t.prev[ep]; ok && now.After(prev.at) {
		if sum.Frames >= prev.frames {
			sum.FramesPerSecond = float64(sum.Frames-prev.frames) / now.Sub(prev.at).Seconds()
		}
		if sum.Load.Shed >= prev.shed {
			sum.Load.ShedPerSecond = (sum.Load.Shed - prev.shed) / now.Sub(prev.at).Seconds()
		}
	}
	t.prev[ep] = frameSample{frames: sum.Frames, shed: sum.Load.Shed, at: now}

	// Traces are optional: a scrape target without a tracer still renders.
	if spans, err := t.fetchTraces(base + "/debug/traces"); err == nil {
		sum.SlowTraces = slowestTraces(spans, t.nTraces)
	}
	// Alerts likewise: older targets without an SLO engine just skip the pane.
	if firing, alerts, err := t.fetchAlerts(base + "/debug/alerts"); err == nil {
		sum.AlertsFiring = firing
		sum.Alerts = alerts
	}
	// Flight-recorder bundles, when the target runs one.
	if caps, err := t.fetchCaptures(base + "/debug/capture"); err == nil {
		sum.Captures = caps
	}
	if t.history {
		sum.History = t.fetchHistory(base)
	}
	return sum
}

// fetchCaptures pulls the flight recorder's bundle index.
func (t *lftop) fetchCaptures(url string) ([]captureLine, error) {
	resp, err := t.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var doc struct {
		Bundles []struct {
			ID      string         `json:"id"`
			Time    time.Time      `json:"time"`
			Trigger string         `json:"trigger"`
			Files   map[string]int `json:"files"`
		} `json:"bundles"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return nil, err
	}
	out := make([]captureLine, 0, len(doc.Bundles))
	for _, b := range doc.Bundles {
		cl := captureLine{
			ID: b.ID, Time: b.Time.UTC().Format(time.RFC3339),
			Trigger: b.Trigger, Files: len(b.Files),
		}
		for _, n := range b.Files {
			cl.Bytes += n
		}
		out = append(out, cl)
	}
	return out, nil
}

// fetchAlerts pulls the SLO engine's alert list from /debug/alerts.
func (t *lftop) fetchAlerts(url string) (int, []alertLine, error) {
	resp, err := t.client.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var doc struct {
		Firing int `json:"firing"`
		Alerts []struct {
			Rule      string    `json:"rule"`
			Severity  string    `json:"severity"`
			Instance  string    `json:"instance"`
			State     string    `json:"state"`
			Since     time.Time `json:"since"`
			Value     float64   `json:"value"`
			Threshold float64   `json:"threshold"`
		} `json:"alerts"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return 0, nil, err
	}
	out := make([]alertLine, 0, len(doc.Alerts))
	for _, a := range doc.Alerts {
		out = append(out, alertLine{
			Rule: a.Rule, Severity: a.Severity, Instance: a.Instance, State: a.State,
			Since: a.Since.UTC().Format(time.RFC3339), Value: a.Value, Threshold: a.Threshold,
		})
	}
	return doc.Firing, out, nil
}

// fetchHistory lists the target's /debug/tsdb series and renders the
// per-depot round-trip p99 over the history window as sparklines.
func (t *lftop) fetchHistory(base string) []historyLine {
	resp, err := t.client.Get(base + "/debug/tsdb")
	if err != nil {
		return nil
	}
	var idx struct {
		Series []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&idx)
	resp.Body.Close()
	if derr != nil {
		return nil
	}
	var out []historyLine
	for _, s := range idx.Series {
		if !strings.HasPrefix(s.Name, obs.MIBPDepotMs+"{") {
			continue
		}
		q := fmt.Sprintf("%s/debug/tsdb?name=%s&since=%s&agg=p99&window=30s",
			base, url.QueryEscape(s.Name), t.histWindow)
		pr, err := t.client.Get(q)
		if err != nil {
			continue
		}
		var series struct {
			Points []obs.Point `json:"points"`
		}
		derr := json.NewDecoder(io.LimitReader(pr.Body, 4<<20)).Decode(&series)
		pr.Body.Close()
		if derr != nil || len(series.Points) == 0 {
			continue
		}
		h := historyLine{
			Series: s.Name,
			Points: len(series.Points),
			LastMs: series.Points[len(series.Points)-1].V,
			Spark:  sparkline(series.Points),
		}
		for _, p := range series.Points {
			if p.V > h.MaxMs {
				h.MaxMs = p.V
			}
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series < out[j].Series })
	return out
}

// sparkline renders points as unicode block characters, min..max scaled,
// downsampled to at most 60 columns.
func sparkline(points []obs.Point) string {
	const levels = "▁▂▃▄▅▆▇█"
	const maxCols = 60
	vals := make([]float64, 0, maxCols)
	if len(points) <= maxCols {
		for _, p := range points {
			vals = append(vals, p.V)
		}
	} else {
		// Bucket-max downsample: spikes must survive the squeeze.
		per := (len(points) + maxCols - 1) / maxCols
		for i := 0; i < len(points); i += per {
			maxV := points[i].V
			for j := i + 1; j < i+per && j < len(points); j++ {
				if points[j].V > maxV {
					maxV = points[j].V
				}
			}
			vals = append(vals, maxV)
		}
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	runes := []rune(levels)
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(runes)-1))
		}
		b.WriteRune(runes[idx])
	}
	return b.String()
}

// waitReady blocks until every target's /readyz answers 200, or the
// timeout passes; stragglers are reported with their startup phase.
func (t *lftop) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	pending := append([]string(nil), t.targets...)
	lastPhase := make(map[string]string, len(pending))
	for {
		var still []string
		for _, ep := range pending {
			if ok, phase := t.checkReady(baseURL(ep) + "/readyz"); !ok {
				lastPhase[ep] = phase
				still = append(still, ep)
			}
		}
		if len(still) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			parts := make([]string, 0, len(still))
			for _, ep := range still {
				parts = append(parts, fmt.Sprintf("%s (%s)", ep, lastPhase[ep]))
			}
			return fmt.Errorf("not ready after %v: %s", timeout, strings.Join(parts, ", "))
		}
		pending = still
		time.Sleep(100 * time.Millisecond)
	}
}

// checkReady probes one /readyz; on 503 it returns the reported startup
// phase so the eventual timeout error says what each target was stuck on.
func (t *lftop) checkReady(url string) (bool, string) {
	resp, err := t.client.Get(url)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return true, ""
	}
	var doc struct {
		Phase string `json:"phase"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&doc); err == nil && doc.Phase != "" {
		return false, doc.Phase
	}
	return false, fmt.Sprintf("HTTP %d", resp.StatusCode)
}

func (t *lftop) fetchMetrics(url string) (map[string]json.RawMessage, error) {
	resp, err := t.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return snap, nil
}

func (t *lftop) fetchTraces(url string) ([]obs.SpanRecord, error) {
	resp, err := t.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var spans []obs.SpanRecord
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}

// histoView mirrors the fields of obs.HistogramSnapshot that lftop reads.
type histoView struct {
	Count    int64   `json:"count"`
	Sum      float64 `json:"sum"`
	Mean     float64 `json:"mean"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	Exemplar string  `json:"exemplar_trace"`
}

// splitLabeled breaks a folded metric name like "ibp.depot.ms{depot=x}"
// into family and label value; plain names return ok=false.
func splitLabeled(name, family string) (string, bool) {
	if !strings.HasPrefix(name, family+"{") || !strings.HasSuffix(name, "}") {
		return "", false
	}
	inner := name[len(family)+1 : len(name)-1]
	if i := strings.IndexByte(inner, '='); i >= 0 {
		return inner[i+1:], true
	}
	return inner, true
}

func summarizeMetrics(snap map[string]json.RawMessage, sum *targetSummary) {
	num := func(name string) float64 {
		var v float64
		if raw, ok := snap[name]; ok {
			_ = json.Unmarshal(raw, &v)
		}
		return v
	}
	for name, raw := range snap {
		if depot, ok := splitLabeled(name, obs.MIBPDepotMs); ok {
			var h histoView
			if json.Unmarshal(raw, &h) == nil && h.Count > 0 {
				sum.Depots = append(sum.Depots, depotStat{
					Depot: depot, Count: h.Count, P50: h.P50, P95: h.P95, P99: h.P99,
					Exemplar: h.Exemplar,
				})
			}
			continue
		}
		if op, ok := splitLabeled(name, obs.MIBPOpErrors); ok {
			var v float64
			if json.Unmarshal(raw, &v) == nil && v > 0 {
				if sum.OpErrors == nil {
					sum.OpErrors = make(map[string]float64)
				}
				sum.OpErrors[op] = v
			}
			continue
		}
		if _, ok := splitLabeled(name, obs.MAgentFetchMs); ok {
			var h histoView
			if json.Unmarshal(raw, &h) == nil {
				sum.Frames += h.Count
				sum.FrameMeanMs += h.Sum
			}
			continue
		}
		// Shed counters are labeled by reason; fold every instance of the
		// three families into one total for the load pane.
		for _, family := range []string{obs.MIBPShed, obs.MDVSShed, obs.MAgentRenderShed} {
			if _, ok := splitLabeled(name, family); ok {
				var v float64
				if json.Unmarshal(raw, &v) == nil {
					sum.Load.Shed += v
				}
				break
			}
		}
	}
	if sum.Frames > 0 {
		sum.FrameMeanMs /= float64(sum.Frames)
	}
	// Runtime pane: present on any target whose stack runs the prof
	// harvester (the families register eagerly, so the gauge key exists
	// even before the first GC).
	if _, ok := snap[obs.MRuntimeGoroutines]; ok {
		rs := &runtimeStat{
			HeapLiveMB:  num(obs.MRuntimeHeapLiveBytes) / (1 << 20),
			HeapGoalMB:  num(obs.MRuntimeHeapGoalBytes) / (1 << 20),
			Goroutines:  num(obs.MRuntimeGoroutines),
			MutexWaitMs: num(obs.MRuntimeMutexWaitMs),
			GCCycles:    num(obs.MRuntimeGCCycles),
		}
		var gc, sched histoView
		if raw, ok := snap[obs.MRuntimeGCPauseMs]; ok && json.Unmarshal(raw, &gc) == nil {
			rs.GCPauses = gc.Count
			rs.GCPauseP99Ms = gc.P99
		}
		if raw, ok := snap[obs.MRuntimeSchedLatencyMs]; ok && json.Unmarshal(raw, &sched) == nil {
			rs.SchedLatP99Ms = sched.P99
		}
		sum.Runtime = rs
	}
	// Edge pane: present only when the target embeds an edge cache (the
	// edge.cache.* snapshot keys are registered by edge.Cache).
	if _, ok := snap["edge.cache.capacity"]; ok {
		es := &edgeStat{
			CapacityBytes: num("edge.cache.capacity"),
			UsedBytes:     num("edge.cache.used"),
			Entries:       num("edge.cache.entries"),
			Evictions:     num("edge.cache.evictions"),
			HitRate:       num("edge.cache.hit_rate"),
			Hits:          num(obs.MEdgeHits),
			Misses:        num(obs.MEdgeMisses),
			Fills:         num(obs.MEdgeFills),
			FillErrors:    num(obs.MEdgeFillErrors),
		}
		for name := range snap {
			if vs, ok := strings.CutPrefix(name, "edge.hot."); ok {
				es.HotSet = append(es.HotSet, hotSetLine{ViewSet: vs, Count: num(name)})
			}
		}
		sort.Slice(es.HotSet, func(i, j int) bool {
			if es.HotSet[i].Count != es.HotSet[j].Count {
				return es.HotSet[i].Count > es.HotSet[j].Count
			}
			return es.HotSet[i].ViewSet < es.HotSet[j].ViewSet
		})
		sum.Edge = es
	}
	sort.Slice(sum.Depots, func(i, j int) bool { return sum.Depots[i].Depot < sum.Depots[j].Depot })
	sum.FailedAttempts = num(obs.MLorsFailedAttempts)
	sum.RetryPasses = num(obs.MLorsRetryPasses)
	sum.CircuitOpen = num(obs.MLorsCircuitOpen)
	sum.CircuitTrips = num(obs.MLorsCircuitTrips)
	sum.CacheHitRate = num(obs.MAgentHitRate)
	sum.Load.InFlight = num(obs.MIBPInflight) + num(obs.MDVSInflight)
	sum.Load.QueueDepth = num(obs.MIBPQueueDepth) + num(obs.MDVSQueueDepth) + num(obs.MAgentRenderQueueDepth)
	sum.Load.Coalesced = num(obs.MAgentCoalesced)
	sum.Load.BusyRejections = num(obs.MLorsBusyRejections)
	sum.Load.RetryBudgetExhausted = num(obs.MLorsRetryBudgetExhausted)
	if total := sum.Load.Coalesced + float64(sum.Frames); total > 0 {
		sum.Load.CoalesceHitRate = sum.Load.Coalesced / total
	}
}

// slowestTraces reduces a span dump to its root spans, slowest first. A
// root is a span with no parent, or whose parent is remote (the local
// half of a cross-host trace).
func slowestTraces(spans []obs.SpanRecord, n int) []traceLine {
	perTrace := make(map[uint64]int, len(spans))
	for _, s := range spans {
		perTrace[s.TraceID]++
	}
	var roots []traceLine
	for _, s := range spans {
		if s.ParentID != 0 && !s.Remote {
			continue
		}
		roots = append(roots, traceLine{
			TraceID: fmt.Sprintf("%016x", s.TraceID),
			Name:    s.Name,
			Ms:      s.DurMs,
			Spans:   perTrace[s.TraceID],
		})
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Ms > roots[j].Ms })
	if len(roots) > n {
		roots = roots[:n]
	}
	return roots
}

func render(w io.Writer, sums []targetSummary, live bool) {
	if live {
		fmt.Fprint(w, "\x1b[2J\x1b[H") // clear screen, home cursor
	}
	fmt.Fprintf(w, "lftop — %s — %d target(s)\n", time.Now().Format("15:04:05"), len(sums))
	for _, s := range sums {
		fmt.Fprintf(w, "\n== %s ==\n", s.Endpoint)
		if s.Err != "" {
			fmt.Fprintf(w, "  UNREACHABLE: %s\n", s.Err)
			continue
		}
		if len(s.Depots) > 0 {
			fmt.Fprintf(w, "  %-24s %8s %9s %9s %9s  %s\n", "depot", "ops", "p50(ms)", "p95(ms)", "p99(ms)", "exemplar")
			for _, d := range s.Depots {
				ex := d.Exemplar
				if ex == "" {
					ex = "-"
				}
				fmt.Fprintf(w, "  %-24s %8d %9.2f %9.2f %9.2f  %s\n", d.Depot, d.Count, d.P50, d.P95, d.P99, ex)
			}
		}
		if len(s.OpErrors) > 0 {
			ops := make([]string, 0, len(s.OpErrors))
			for op := range s.OpErrors {
				ops = append(ops, op)
			}
			sort.Strings(ops)
			fmt.Fprint(w, "  errors:")
			for _, op := range ops {
				fmt.Fprintf(w, " %s=%.0f", op, s.OpErrors[op])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  transfer: failed_attempts=%.0f retry_passes=%.0f circuits_open=%.0f circuit_trips=%.0f\n",
			s.FailedAttempts, s.RetryPasses, s.CircuitOpen, s.CircuitTrips)
		fmt.Fprintf(w, "  client:   frames=%d mean=%.2fms rate=%.1f/s cache_hit_rate=%.0f%%\n",
			s.Frames, s.FrameMeanMs, s.FramesPerSecond, 100*s.CacheHitRate)
		fmt.Fprintf(w, "  load:     in_flight=%.0f queue=%.0f shed=%.0f (%.1f/s) coalesce_hit=%.0f%% busy_rejections=%.0f budget_exhausted=%.0f\n",
			s.Load.InFlight, s.Load.QueueDepth, s.Load.Shed, s.Load.ShedPerSecond,
			100*s.Load.CoalesceHitRate, s.Load.BusyRejections, s.Load.RetryBudgetExhausted)
		if s.Runtime != nil {
			fmt.Fprintf(w, "  runtime:  heap=%.1f/%.1fMB goroutines=%.0f gc_pause_p99=%.2fms (%d pauses, %.0f cycles) sched_p99=%.2fms mutex_wait=%.0fms\n",
				s.Runtime.HeapLiveMB, s.Runtime.HeapGoalMB, s.Runtime.Goroutines,
				s.Runtime.GCPauseP99Ms, s.Runtime.GCPauses, s.Runtime.GCCycles,
				s.Runtime.SchedLatP99Ms, s.Runtime.MutexWaitMs)
		}
		if len(s.Captures) > 0 {
			fmt.Fprintln(w, "  captures:")
			for _, c := range s.Captures {
				fmt.Fprintf(w, "    %-24s %s trigger=%s files=%d bytes=%d\n",
					c.ID, c.Time, c.Trigger, c.Files, c.Bytes)
			}
		}
		if s.Edge != nil {
			fmt.Fprintf(w, "  edge:     hit_rate=%.0f%% entries=%.0f used=%.1f/%.1fMB hits=%.0f misses=%.0f fills=%.0f (%.0f failed) evictions=%.0f\n",
				100*s.Edge.HitRate, s.Edge.Entries,
				s.Edge.UsedBytes/(1<<20), s.Edge.CapacityBytes/(1<<20),
				s.Edge.Hits, s.Edge.Misses, s.Edge.Fills, s.Edge.FillErrors, s.Edge.Evictions)
			if len(s.Edge.HotSet) > 0 {
				fmt.Fprint(w, "  hot set: ")
				for i, h := range s.Edge.HotSet {
					if i > 0 {
						fmt.Fprint(w, "  ")
					}
					fmt.Fprintf(w, "%s=%.1f", h.ViewSet, h.Count)
				}
				fmt.Fprintln(w)
			}
		}
		if len(s.History) > 0 {
			fmt.Fprintln(w, "  history (p99 ms):")
			for _, h := range s.History {
				fmt.Fprintf(w, "    %-32s %s last=%.1f max=%.1f (%d pts)\n",
					h.Series, h.Spark, h.LastMs, h.MaxMs, h.Points)
			}
		}
		if len(s.Alerts) > 0 {
			fmt.Fprintf(w, "  alerts (%d firing):\n", s.AlertsFiring)
			for _, a := range s.Alerts {
				fmt.Fprintf(w, "    %-9s %-8s %-24s %s value=%.2f threshold=%.2f\n",
					a.State, a.Severity, a.Rule, a.Instance, a.Value, a.Threshold)
			}
		}
		if len(s.SlowTraces) > 0 {
			fmt.Fprintln(w, "  slowest traces:")
			for _, tl := range s.SlowTraces {
				fmt.Fprintf(w, "    %8.2fms %-20s trace=%s (%d spans)\n", tl.Ms, tl.Name, tl.TraceID, tl.Spans)
			}
		}
	}
}
