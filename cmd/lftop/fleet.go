package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"sort"
	"strings"
	"time"

	"lonviz/internal/obs"
)

// fleetMemberLine is one health-matrix row from /debug/fleet, plus the
// per-node latency sparkline lftop derives from the cluster TSDB.
type fleetMemberLine struct {
	Addr         string  `json:"addr"`
	Kind         string  `json:"kind"`
	State        string  `json:"state"`
	Version      string  `json:"version,omitempty"`
	UptimeS      float64 `json:"uptime_s,omitempty"`
	P99Ms        float64 `json:"p99_ms,omitempty"`
	AlertsFiring int     `json:"alerts_firing,omitempty"`
	Health       string  `json:"health,omitempty"`
	Err          string  `json:"err,omitempty"`
	Spark        string  `json:"spark,omitempty"`
}

// fleetSummary is everything lftop -fleet shows for one scraping
// steward; it doubles as the -fleet -json schema.
type fleetSummary struct {
	Endpoint   string             `json:"endpoint"`
	Err        string             `json:"err,omitempty"`
	Self       string             `json:"self,omitempty"`
	Updated    string             `json:"updated,omitempty"`
	ScrapeMs   float64            `json:"scrape_ms,omitempty"`
	Members    []fleetMemberLine  `json:"members"`
	Aggregates map[string]float64 `json:"aggregates,omitempty"`
	FPSSpark   string             `json:"fps_spark,omitempty"`
	Firing     int                `json:"firing"`
	Alerts     []alertLine        `json:"alerts,omitempty"`
}

// pollFleet pulls one scraping steward's /debug/fleet view and decorates
// it with sparklines from the cluster TSDB at /debug/fleet/tsdb.
func (t *lftop) pollFleet(ep string) fleetSummary {
	sum := fleetSummary{Endpoint: ep}
	base := baseURL(ep)

	resp, err := t.client.Get(base + "/debug/fleet")
	if err != nil {
		sum.Err = err.Error()
		return sum
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		sum.Err = fmt.Sprintf("/debug/fleet: HTTP %d", resp.StatusCode)
		return sum
	}
	var doc struct {
		Self       string            `json:"self"`
		Updated    time.Time         `json:"updated"`
		ScrapeMs   float64           `json:"scrape_ms"`
		Members    []fleetMemberLine `json:"members"`
		Aggregates map[string]float64
		Firing     int `json:"firing"`
		Alerts     []struct {
			Rule      string    `json:"rule"`
			Severity  string    `json:"severity"`
			Instance  string    `json:"instance"`
			State     string    `json:"state"`
			Since     time.Time `json:"since"`
			Value     float64   `json:"value"`
			Threshold float64   `json:"threshold"`
		} `json:"alerts"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&doc); err != nil {
		sum.Err = err.Error()
		return sum
	}
	sum.Self = doc.Self
	if !doc.Updated.IsZero() {
		sum.Updated = doc.Updated.UTC().Format(time.RFC3339)
	}
	sum.ScrapeMs = doc.ScrapeMs
	sum.Members = doc.Members
	sum.Aggregates = doc.Aggregates
	sum.Firing = doc.Firing
	for _, a := range doc.Alerts {
		sum.Alerts = append(sum.Alerts, alertLine{
			Rule: a.Rule, Severity: a.Severity, Instance: a.Instance, State: a.State,
			Since: a.Since.UTC().Format(time.RFC3339), Value: a.Value, Threshold: a.Threshold,
		})
	}
	t.fleetSparks(base, &sum)
	return sum
}

// fleetSparks fills the per-node latency sparklines and the fleet fps
// sparkline from the cluster TSDB index.
func (t *lftop) fleetSparks(base string, sum *fleetSummary) {
	resp, err := t.client.Get(base + "/debug/fleet/tsdb")
	if err != nil {
		return
	}
	var idx struct {
		Series []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&idx)
	resp.Body.Close()
	if derr != nil {
		return
	}
	// Per node, keep the sparkline of the hottest p99 family so the matrix
	// column tracks whatever that member actually serves.
	best := make(map[string]historyLine, len(sum.Members))
	for _, s := range idx.Series {
		if !strings.HasPrefix(s.Name, "fleet.node.p99.ms{") {
			continue
		}
		node := labelValue(s.Name, "node")
		if node == "" {
			continue
		}
		h, ok := t.fetchFleetSeries(base, s.Name)
		if !ok {
			continue
		}
		if prev, seen := best[node]; !seen || h.MaxMs > prev.MaxMs {
			best[node] = h
		}
	}
	for i := range sum.Members {
		if h, ok := best[sum.Members[i].Addr]; ok {
			sum.Members[i].Spark = h.Spark
		}
	}
	if h, ok := t.fetchFleetSeries(base, "fleet.fps"); ok {
		sum.FPSSpark = h.Spark
	}
}

// fetchFleetSeries pulls one cluster series' raw history over the
// -history-window and renders it as a sparkline.
func (t *lftop) fetchFleetSeries(base, name string) (historyLine, bool) {
	q := fmt.Sprintf("%s/debug/fleet/tsdb?name=%s&since=%s",
		base, url.QueryEscape(name), t.histWindow)
	resp, err := t.client.Get(q)
	if err != nil {
		return historyLine{}, false
	}
	var series struct {
		Points []obs.Point `json:"points"`
	}
	derr := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&series)
	resp.Body.Close()
	if derr != nil || len(series.Points) == 0 {
		return historyLine{}, false
	}
	h := historyLine{
		Series: name,
		Points: len(series.Points),
		LastMs: series.Points[len(series.Points)-1].V,
		Spark:  sparkline(series.Points),
	}
	for _, p := range series.Points {
		if p.V > h.MaxMs {
			h.MaxMs = p.V
		}
	}
	return h, true
}

// labelValue extracts one label's value from a folded metric name like
// "fleet.node.p99.ms{family=ibp.server.op.ms,node=127.0.0.1:9001}".
func labelValue(name, key string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return ""
	}
	for _, pair := range strings.Split(name[i+1:len(name)-1], ",") {
		if k, v, ok := strings.Cut(pair, "="); ok && k == key {
			return v
		}
	}
	return ""
}

func writeFleetJSON(w io.Writer, sums []fleetSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Fleet []fleetSummary `json:"fleet"`
	}{sums})
}

// renderFleet draws the fleet dashboard: one health matrix per scraping
// steward, cluster aggregates, and active fleet alerts.
func renderFleet(w io.Writer, sums []fleetSummary, live bool) {
	if live {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	fmt.Fprintf(w, "lftop -fleet — %s — %d steward(s)\n", time.Now().Format("15:04:05"), len(sums))
	for _, s := range sums {
		fmt.Fprintf(w, "\n== %s ==\n", s.Endpoint)
		if s.Err != "" {
			fmt.Fprintf(w, "  UNREACHABLE: %s\n", s.Err)
			continue
		}
		fmt.Fprintf(w, "  scrape %.1fms", s.ScrapeMs)
		if s.Updated != "" {
			fmt.Fprintf(w, "  updated %s", s.Updated)
		}
		if s.FPSSpark != "" {
			fmt.Fprintf(w, "  fps %s", s.FPSSpark)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  %-26s %-8s %-9s %-10s %8s %8s %6s  %-18s %s\n",
			"node", "kind", "state", "version", "uptime", "p99(ms)", "alerts", "p99 spark", "note")
		for _, m := range s.Members {
			note := m.Err
			if note == "" {
				note = m.Health
			}
			fmt.Fprintf(w, "  %-26s %-8s %-9s %-10s %8s %8.1f %6d  %-18s %s\n",
				m.Addr, m.Kind, m.State, m.Version, fmtUptime(m.UptimeS),
				m.P99Ms, m.AlertsFiring, m.Spark, note)
		}
		keys := make([]string, 0, len(s.Aggregates))
		for k := range s.Aggregates {
			if strings.Contains(k, "{") {
				continue // per-node/per-exnode mirrors: matrix and alerts cover them
			}
			keys = append(keys, k)
		}
		if len(keys) > 0 {
			sort.Strings(keys)
			fmt.Fprint(w, "  cluster: ")
			for i, k := range keys {
				if i > 0 {
					fmt.Fprint(w, "  ")
				}
				fmt.Fprintf(w, "%s=%.3g", k, s.Aggregates[k])
			}
			fmt.Fprintln(w)
		}
		if len(s.Alerts) > 0 {
			fmt.Fprintf(w, "  fleet alerts (%d firing):\n", s.Firing)
			for _, a := range s.Alerts {
				fmt.Fprintf(w, "    %-9s %-8s %-24s %s value=%.2f threshold=%.2f\n",
					a.State, a.Severity, a.Rule, a.Instance, a.Value, a.Threshold)
			}
		}
	}
}

func fmtUptime(s float64) string {
	if s <= 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Second).String()
}
