// Command lfbrowse is the client side of the streaming model: a client
// agent (cache + prefetch + optional LAN-depot prestaging) plus a viewer
// that walks an orchestrated cursor path, requesting view sets and
// rendering novel views. It prints the per-access latency log and can
// save rendered frames as PNGs (the paper's Figure 6 screenshots).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/lightfield"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
	"lonviz/internal/session"
)

func main() {
	dvsAddr := flag.String("dvs", "", "DVS address (required)")
	dataset := flag.String("dataset", "neghip", "dataset name")
	res := flag.Int("res", 64, "sample view resolution (must match the published database)")
	step := flag.Float64("step", 10, "lattice step in degrees (must match)")
	l := flag.Int("l", 3, "view set side length (must match)")
	lanDepots := flag.String("lan-depots", "", "comma-separated LAN depot addresses for prestaging")
	edgeAddr := flag.String("edge-addr", "", "shared edge cache (lfedged) address; misses route through it instead of the WAN depots")
	pipelineWindow := flag.Int("pipeline-window", 0, "in-flight window per pipelined depot connection (0 = library default, negative forces serial one-connection-per-operation transfers)")
	trajectory := flag.Bool("trajectory", false, "trajectory-predictive prefetch (extrapolated cursor motion) instead of the quadrant policy")
	accesses := flag.Int("accesses", session.PaperAccessCount, "orchestrated accesses")
	think := flag.Duration("think", 100*time.Millisecond, "cursor think time")
	seed := flag.Int64("seed", 1, "cursor script seed")
	prefetch := flag.Bool("prefetch", true, "enable quadrant prefetching")
	frames := flag.String("frames", "", "directory to write rendered PNG frames into")
	display := flag.Int("display", 200, "display resolution for rendered frames")
	serve := flag.String("serve", "", "also expose the client agent to remote clients on this address")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	tracePeers := flag.String("trace-peers", "", "comma-separated peer observability endpoints (host:port) to pull depot-side trace halves from; prints merged end-to-end trees for the slowest accesses (requires -metrics-addr)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if *dvsAddr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("lfbrowse: %v", err)
	}
	p := lightfield.ScaledParams(*step, *l, *res)
	if err := p.Validate(); err != nil {
		log.Fatalf("lfbrowse: %v", err)
	}

	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
	})
	if err != nil {
		log.Fatalf("lfbrowse: metrics listen: %v", err)
	}
	if stack.Enabled() {
		fmt.Printf("lfbrowse: metrics on http://%s/metrics (pprof at /debug/pprof/)\n", stack.Addr())
	}
	defer func() {
		closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		_ = stack.Close(closeCtx)
		cancel()
	}()

	var lan []string
	if *lanDepots != "" {
		lan = strings.Split(*lanDepots, ",")
	}
	stack.SetStatus("starting client agent")
	ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset:            *dataset,
		Params:             p,
		DVS:                &dvs.Client{Addr: *dvsAddr},
		LANDepots:          lan,
		Prefetch:           *prefetch,
		EdgeAddr:           *edgeAddr,
		PipelineWindow:     *pipelineWindow,
		TrajectoryPrefetch: *trajectory,
		// Bias replica selection toward depots with good recent latency
		// history; nil (metrics off) keeps the pure shuffled order.
		ReplicaBias: stack.ReplicaBias(5 * time.Minute),
	})
	if err != nil {
		log.Fatalf("lfbrowse: %v", err)
	}
	defer ca.Close()
	if stack.Enabled() {
		ca.RegisterMetrics(nil)
	}

	if *serve != "" {
		srv, err := agent.NewClientAgentServer(ca, *dataset)
		if err != nil {
			log.Fatalf("lfbrowse: %v", err)
		}
		bound, err := srv.ListenAndServe(*serve)
		if err != nil {
			log.Fatalf("lfbrowse: %v", err)
		}
		defer srv.Close()
		fmt.Printf("lfbrowse: client agent also serving remote clients on %s\n", bound)
	}

	ctx := context.Background()
	if len(lan) > 0 {
		if _, err := ca.StartPrestaging(ctx); err != nil {
			log.Fatalf("lfbrowse: %v", err)
		}
		fmt.Printf("lfbrowse: aggressive prestaging to %d LAN depots started\n", len(lan))
	}
	stack.MarkReady()

	viewer, err := agent.NewViewer(p, ca)
	if err != nil {
		log.Fatalf("lfbrowse: %v", err)
	}
	script, err := session.StandardScript(p, *accesses, *seed)
	if err != nil {
		log.Fatalf("lfbrowse: %v", err)
	}
	if *frames != "" {
		if err := os.MkdirAll(*frames, 0o755); err != nil {
			log.Fatalf("lfbrowse: %v", err)
		}
	}

	fmt.Printf("%-7s %-8s %-12s %-10s %-10s %-10s %-9s\n",
		"access", "viewset", "class", "comm(s)", "unzip(s)", "total(s)", "bytes")
	records, err := session.Run(ctx, viewer, script, session.RunOptions{
		ThinkTime: *think,
		OnAccess: func(i int, rec agent.AccessRecord) {
			fmt.Printf("%-7d %-8s %-12s %-10.4f %-10.4f %-10.4f %-9d\n",
				i+1, rec.ID, rec.Class, rec.Comm.Seconds(), rec.Decompress.Seconds(),
				rec.Total.Seconds(), rec.Bytes)
			if *frames != "" {
				im, _, err := viewer.Render(script.Moves[i], p.OuterRadius*1.6, *display)
				if err != nil {
					log.Printf("lfbrowse: render frame %d: %v", i, err)
					return
				}
				path := filepath.Join(*frames, fmt.Sprintf("frame%03d.png", i))
				f, err := os.Create(path)
				if err != nil {
					log.Printf("lfbrowse: %v", err)
					return
				}
				if err := im.WritePNG(f); err != nil {
					log.Printf("lfbrowse: encode %s: %v", path, err)
				}
				f.Close()
			}
		},
	})
	if err != nil {
		log.Fatalf("lfbrowse: session: %v", err)
	}
	counts := session.ClassCounts(records)
	fmt.Printf("\nlfbrowse: %d accesses, classes %v, initial phase %d, agent stats %+v\n",
		len(records), counts, session.InitialPhaseLength(records), ca.Stats())

	if *tracePeers != "" {
		printMergedTraces(ctx, *tracePeers)
	}
}

// printMergedTraces pulls the remote halves of this session's traces from
// the named peer observability endpoints, merges them with the local span
// ring, and renders the slowest end-to-end trees — the cross-host view
// that per-process /debug/traces cannot give.
func printMergedTraces(ctx context.Context, peers string) {
	col := &obs.Collector{Local: obs.DefaultTracer(), Peers: strings.Split(peers, ",")}
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	spans, errs := col.Collect(cctx, 0)
	for _, err := range errs {
		log.Printf("lfbrowse: trace collection: %v", err)
	}
	trees := obs.BuildTrees(spans)
	// Slowest first; cap the dump so a long session stays readable.
	sort.Slice(trees, func(i, j int) bool { return trees[i].Duration() > trees[j].Duration() })
	const maxTrees = 3
	fmt.Printf("\nlfbrowse: %d merged traces from %d spans; slowest %d:\n",
		len(trees), len(spans), min(maxTrees, len(trees)))
	for i, tt := range trees {
		if i >= maxTrees {
			break
		}
		tt.Render(os.Stdout)
	}
}
