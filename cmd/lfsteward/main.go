// Command lfsteward runs the maintenance daemon for a published
// light-field database. It resolves every view set's exNode from the DVS,
// adopts them, and then keeps the database healthy: probing replica
// allocations, renewing leases before they expire, repairing
// under-replicated extents onto fresh depots from the L-Bone, pruning
// dead replicas, and republishing repaired exNodes through the DVS so
// browsing clients pick up the new layout.
//
// Without a steward, an IBP-hosted database silently decays as leases run
// out and depots fail; with one, the paper's "publish once, browse from
// the network" model keeps working indefinitely.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/edge"
	"lonviz/internal/exnode"
	"lonviz/internal/lbone"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/obs"
	"lonviz/internal/obs/fleet"
	"lonviz/internal/obs/slo"
	"lonviz/internal/steward"
)

func main() {
	dvsAddr := flag.String("dvs", "", "DVS address (required)")
	dataset := flag.String("dataset", "neghip", "dataset name")
	res := flag.Int("res", 64, "sample view resolution (must match the published database)")
	step := flag.Float64("step", 10, "lattice step in degrees (must match the published database)")
	l := flag.Int("l", 3, "view set side length (must match the published database)")
	lboneURL := flag.String("lbone", "", "L-Bone base URL for repair depot discovery (e.g. http://host:port); empty disables repair")
	x := flag.Float64("x", 0, "network coordinate for depot selection")
	y := flag.Float64("y", 0, "network coordinate for depot selection")
	replicas := flag.Int("replicas", 2, "target replicas per extent")
	interval := flag.Duration("interval", time.Minute, "scan cycle interval")
	renewWindow := flag.Duration("renew-window", 5*time.Minute, "renew leases expiring within this window")
	lease := flag.Duration("lease", 30*time.Minute, "lease term for renewals and repairs")
	budget := flag.Int("repair-budget", 16, "max repair copies per cycle")
	verbose := flag.Bool("v", false, "log every steward event")
	once := flag.Bool("once", false, "run a single scan cycle and exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	fleetScrape := flag.Bool("fleet-scrape", false, "scrape the whole fleet's observability endpoints into a cluster TSDB served at /debug/fleet (needs -metrics-addr; discovers members via -lbone plus -fleet-peers)")
	fleetPeers := flag.String("fleet-peers", "", "comma-separated static metrics addresses to scrape in addition to L-Bone discovery")
	fleetInterval := flag.Duration("fleet-interval", 5*time.Second, "fleet scrape poll interval")
	edgeAddr := flag.String("edge", "", "edge depot address for demand-driven hot-set warming (needs -fleet-scrape; empty disables)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if *dvsAddr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("lfsteward: %v", err)
	}
	p := lightfield.ScaledParams(*step, *l, *res)
	if err := p.Validate(); err != nil {
		log.Fatalf("lfsteward: %v", err)
	}

	dvsClient := &dvs.Client{Addr: *dvsAddr}
	cfg := steward.Config{
		ReplicationTarget: *replicas,
		RenewalWindow:     *renewWindow,
		LeaseTerm:         *lease,
		ScanInterval:      *interval,
		RepairBudget:      *budget,
		Health:            lors.NewHealthTracker(lors.HealthConfig{}),
		Publish: func(ctx context.Context, name string, ex *exnode.ExNode) error {
			xml, err := ex.Marshal()
			if err != nil {
				return err
			}
			return dvsClient.Replace(ctx, dvs.Key{Dataset: *dataset, ViewSet: name}, xml)
		},
	}
	if *lboneURL != "" {
		cfg.Locate = steward.LBoneLocator(&lbone.Client{BaseURL: *lboneURL}, *x, *y)
	}
	if *verbose {
		cfg.OnEvent = func(ev steward.Event) { log.Printf("lfsteward: %s", ev) }
	} else {
		cfg.OnEvent = func(ev steward.Event) {
			switch ev.Type {
			case steward.EventRenew:
			default:
				log.Printf("lfsteward: %s", ev)
			}
		}
	}
	s := steward.New(cfg)

	if *metricsAddr != "" {
		s.RegisterMetrics(nil)
	}

	// The fleet scraper is built before the stack so its endpoints mount
	// on the same mux and its critical alerts degrade the same /healthz.
	var fl *fleet.Fleet
	if *fleetScrape {
		if *metricsAddr == "" {
			log.Fatalf("lfsteward: -fleet-scrape needs -metrics-addr")
		}
		fcfg := fleet.Config{
			Interval:    *fleetInterval,
			Replication: *replicas,
			Coverage:    s.ReplicaCoverage,
			// A depot dropping out of the matrix jumps the audit queue the
			// same way a firing latency alert does: its replicas get
			// re-verified now, not at the next scan tick.
			OnMemberState: func(m fleet.Member, from string) {
				if m.Kind == lbone.KindDepot && m.State == fleet.StateDown && m.ServiceAddr != "" {
					s.TriggerDepotAudit(m.ServiceAddr)
				}
			},
		}
		if *lboneURL != "" {
			fcfg.LBone = &lbone.Client{BaseURL: *lboneURL}
		}
		for _, peer := range strings.Split(*fleetPeers, ",") {
			if peer = strings.TrimSpace(peer); peer != "" {
				fcfg.Peers = append(fcfg.Peers, peer)
			}
		}
		fl = fleet.New(fcfg)
	}
	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
		Extra: map[string]http.Handler{
			"/debug/fleet":      fl.Handler(),
			"/debug/fleet/tsdb": fl.TSDBHandler(),
		},
		ExtraHealth: []func() error{fl.HealthError},
	})
	if err != nil {
		log.Fatalf("lfsteward: metrics listen: %v", err)
	}
	if stack.Enabled() {
		fmt.Printf("lfsteward: metrics on http://%s/metrics (pprof at /debug/pprof/)\n", stack.Addr())
	}
	defer func() {
		closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		_ = stack.Close(closeCtx)
		cancel()
	}()
	// A firing depot alert jumps the queue: audit that depot's replicas now
	// instead of waiting out the scan interval.
	stack.Subscribe(steward.AlertTrigger(s))
	if fl != nil {
		// The scraper itself is part of the fleet it watches.
		fl.SetSelf(stack.Addr())
		fl.AddStaticPeer(stack.Addr(), lbone.KindSteward)
		// Fleet-scope alerts feed the same plumbing node alerts do: a
		// critical breach captures a forensic bundle and jumps the
		// steward's audit queue.
		fl.Subscribe(func(a slo.Alert) {
			if a.State == slo.StateFiring && a.Severity == slo.SeverityCritical {
				stack.Recorder.TriggerAsync("fleet:"+a.Rule, a.Reason)
			}
		})
		fl.Subscribe(steward.AlertTrigger(s))
	}

	// Adopt every view set the lattice defines; sets the DVS does not know
	// (not yet published, or published at different parameters) are skipped
	// with a warning.
	stack.SetStatus("adopting exNodes from DVS")
	ctx := context.Background()
	adopted, missing := 0, 0
	for _, id := range p.AllViewSets() {
		key := dvs.Key{Dataset: *dataset, ViewSet: id.String()}
		docs, err := dvsClient.Get(ctx, key)
		if err != nil {
			if errors.Is(err, dvs.ErrMiss) {
				missing++
				continue
			}
			log.Fatalf("lfsteward: DVS get %s: %v", key, err)
		}
		ex, err := exnode.Unmarshal(docs[0])
		if err != nil {
			log.Printf("lfsteward: bad exNode for %s: %v", key, err)
			continue
		}
		if err := s.Adopt(id.String(), ex); err != nil {
			log.Printf("lfsteward: adopt %s: %v", key, err)
			continue
		}
		adopted++
	}
	if adopted == 0 {
		log.Fatalf("lfsteward: no exNodes to manage (%d view sets missing from DVS %s)", missing, *dvsAddr)
	}
	fmt.Printf("lfsteward: managing %d view sets of %q (%d not in DVS), target replication %d\n",
		adopted, *dataset, missing, *replicas)
	stack.MarkReady()

	// ParseViewSetKey round-trips the names we adopt; assert early so a
	// lattice/DVS mismatch is a startup error, not a runtime surprise.
	for _, name := range s.Objects() {
		if _, err := agent.ParseViewSetKey(name); err != nil {
			log.Fatalf("lfsteward: unparseable view set name %q: %v", name, err)
		}
	}

	if *once {
		fl.ScrapeOnce(ctx)
		rep, err := s.RunCycle(ctx)
		if err != nil {
			log.Fatalf("lfsteward: %v", err)
		}
		fmt.Printf("lfsteward: cycle: %+v\n", rep)
		printStats(s.Stats())
		return
	}

	runCtx, cancel := context.WithCancel(ctx)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() { <-sig; cancel() }()

	if fl != nil {
		fleetStop := make(chan struct{})
		defer close(fleetStop)
		go fl.Run(fleetStop)

		if *edgeAddr != "" {
			// Demand-driven hot-set replication: the fleet scraper's
			// aggregated edge popularity feeds the replicator, which warms
			// the hottest view sets toward the edge ahead of client demand.
			hs, err := steward.NewHotSetReplicator(steward.HotSetConfig{
				Feed: func(n int) []edge.HotItem {
					items := fl.HotItems(n)
					out := make([]edge.HotItem, len(items))
					for i, it := range items {
						out[i] = edge.HotItem{Hint: it.Hint, Count: float64(it.Count)}
					}
					return out
				},
				Warm: func(ctx context.Context, hint string) error {
					ex := s.ExNode(hint)
					if ex == nil {
						return fmt.Errorf("unmanaged view set %q", hint)
					}
					return edge.Warm(ctx, ex, *edgeAddr, hint, nil)
				},
			})
			if err != nil {
				log.Fatalf("lfsteward: %v", err)
			}
			fl.Subscribe(func(a slo.Alert) {
				if a.State == slo.StateFiring {
					hs.Trigger()
				}
			})
			go hs.Run(runCtx)
		}
	}

	if err := s.Run(runCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("lfsteward: %v", err)
	}
	printStats(s.Stats())
}

func printStats(st steward.Stats) {
	fmt.Printf("lfsteward: %d cycles, %d extents audited, %d probes, %d renewals (%d failed), "+
		"%d verified (%d failed), %d/%d repairs, %d pruned, %d lost, %d republished (%d failed)\n",
		st.Cycles, st.ExtentsAudited, st.ReplicasProbed, st.LeasesRenewed, st.RenewFailures,
		st.PayloadsVerified, st.VerifyFailures, st.RepairsSucceeded, st.RepairsAttempted,
		st.ReplicasPruned, st.ExtentsLost, st.Republishes, st.PublishFailures)
}
