// Command lboned runs the Logistical Backbone directory: depots register
// and heartbeat, clients look up the nearest depots with free capacity.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lonviz/internal/lbone"
	"lonviz/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6767", "listen address")
	ttl := flag.Duration("ttl", 30*time.Second, "registration freshness window")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	flag.Parse()

	srv := lbone.NewServer()
	srv.TTL = *ttl
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("lboned: %v", err)
	}
	fmt.Printf("lboned: serving directory on http://%s (TTL %v)\n", bound, *ttl)

	if *metricsAddr != "" {
		mbound, _, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			log.Fatalf("lboned: metrics listen: %v", err)
		}
		fmt.Printf("lboned: metrics on http://%s/metrics\n", mbound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}
