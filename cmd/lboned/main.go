// Command lboned runs the Logistical Backbone directory: depots register
// and heartbeat, clients look up the nearest depots with free capacity.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lonviz/internal/lbone"
	"lonviz/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6767", "listen address")
	ttl := flag.Duration("ttl", 30*time.Second, "registration freshness window")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("lboned: %v", err)
	}

	srv := lbone.NewServer()
	srv.TTL = *ttl
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("lboned: %v", err)
	}
	fmt.Printf("lboned: serving directory on http://%s (TTL %v)\n", bound, *ttl)

	var obsSrv *obs.Server
	if *metricsAddr != "" {
		obsSrv, err = obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			log.Fatalf("lboned: metrics listen: %v", err)
		}
		fmt.Printf("lboned: metrics on http://%s/metrics\n", obsSrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	_ = obsSrv.Close(closeCtx)
	cancel()
}
