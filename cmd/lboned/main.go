// Command lboned runs the Logistical Backbone directory: depots register
// and heartbeat, clients look up the nearest depots with free capacity.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lonviz/internal/lbone"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6767", "listen address")
	ttl := flag.Duration("ttl", 30*time.Second, "registration freshness window")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	sloConfig := flag.String("slo-config", "", "JSON SLO rule file (empty: built-in rules; needs -metrics-addr)")
	profRates := flag.Bool("prof-rates", false, "enable mutex/block profiling rates (contention evidence in capture bundles)")
	tsdbInterval := flag.Duration("tsdb-interval", time.Second, "metrics history sampling interval (/debug/tsdb retention scales with it)")
	logLevel := flag.String("log-level", "info", "event log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "kv", "event log line format: kv|json")
	flag.Parse()

	if err := obs.ConfigureDefaultLogger(*logLevel, *logFormat); err != nil {
		log.Fatalf("lboned: %v", err)
	}

	srv := lbone.NewServer()
	srv.TTL = *ttl
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("lboned: %v", err)
	}
	fmt.Printf("lboned: serving directory on http://%s (TTL %v)\n", bound, *ttl)

	stack, err := slo.Start(slo.Options{
		Addr:           *metricsAddr,
		RulesPath:      *sloConfig,
		SampleInterval: *tsdbInterval,
		ProfRates:      *profRates,
	})
	if err != nil {
		log.Fatalf("lboned: metrics listen: %v", err)
	}
	if stack.Enabled() {
		fmt.Printf("lboned: metrics on http://%s/metrics\n", stack.Addr())
	}
	stack.MarkReady()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	closeCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	_ = stack.Close(closeCtx)
	cancel()
}
