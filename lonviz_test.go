package lonviz

import (
	"context"
	"testing"
	"time"

	"lonviz/internal/lors"
)

// TestFacadeLocalBrowse drives the public API exactly as a downstream user
// would for local browsing: dataset -> generator -> database -> renderer.
func TestFacadeLocalBrowse(t *testing.T) {
	vol, err := NegHip(16)
	if err != nil {
		t.Fatal(err)
	}
	p := ScaledParams(45, 2, 12)
	gen, err := NewRaycastGenerator(p, vol, DefaultNegHipTF())
	if err != nil {
		t.Fatal(err)
	}
	db, err := BuildDatabase(context.Background(), gen, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRenderer(p, MapProvider(db.Sets))
	if err != nil {
		t.Fatal(err)
	}
	cam, err := p.ViewerCamera(Spherical{Theta: 1.3, Phi: 0.5}, p.OuterRadius*1.6, 32)
	if err != nil {
		t.Fatal(err)
	}
	im, stats, err := r.RenderView(cam)
	if err != nil {
		t.Fatal(err)
	}
	if im.Res != 32 || stats.Filled == 0 {
		t.Errorf("render stats = %+v", stats)
	}
	// Codec path through the facade.
	for id, vs := range db.Sets {
		frame, err := EncodeViewSet(vs, p, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeViewSet(frame, p)
		if err != nil || got.ID != id {
			t.Fatalf("facade codec round trip: %v", err)
		}
		break
	}
}

// TestFacadeFabric drives the public LoN API: depot up, striped upload,
// parallel download.
func TestFacadeFabric(t *testing.T) {
	d, err := NewDepot(DepotConfig{Capacity: 1 << 20, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewDepotServer(d)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	payload := make([]byte, 100*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	ex, err := Upload(context.Background(), "obj", payload, lors.UploadOptions{
		Depots:     []string{addr},
		StripeSize: 32 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Download(context.Background(), ex, lors.DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatal("facade fabric round trip mismatch")
		}
	}
}

// TestFacadeExtensions sanity-checks the interior/time-varying entry
// points.
func TestFacadeExtensions(t *testing.T) {
	p := ScaledParams(45, 2, 8)
	if _, err := NewTrack("base", p, []Vec3{{X: 0.2}}, 0.5); err != nil {
		t.Errorf("NewTrack: %v", err)
	}
	if _, err := NewSequence("base", p, 4); err != nil {
		t.Errorf("NewSequence: %v", err)
	}
	if srv := NewDVS(""); srv == nil {
		t.Error("NewDVS returned nil")
	}
}
