// flow_playback: time-varying remote visualization (the paper's closing
// future-work item). One light field database per timestep is published
// through the LoN streaming stack; the player steps through time at a
// fixed view direction while the temporal prefetcher pulls the upcoming
// frames' view sets in the background, so playback after the first frame
// runs at agent-cache speed.
//
// Run with:
//
//	go run ./examples/flow_playback
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/timevary"
)

func main() {
	const steps = 6
	seq, err := timevary.NewSequence("flow", lightfield.ScaledParams(30, 3, 48), steps)
	if err != nil {
		log.Fatal(err)
	}

	// Publish every timestep.
	var depots []string
	for i := 0; i < 2; i++ {
		dep, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 28, MaxLease: time.Hour})
		if err != nil {
			log.Fatal(err)
		}
		srv := ibp.NewServer(dep)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		depots = append(depots, addr)
	}
	dvsSrv := dvs.NewServer("")
	dvsAddr, err := dvsSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dvsSrv.Close()

	start := time.Now()
	for dataset, gen := range timevary.TimeGenerator(seq, 2026) {
		sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
			Dataset: dataset,
			Gen:     gen,
			Depots:  depots,
			DVS:     &dvs.Client{Addr: dvsAddr},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer sa.Close()
		if _, err := sa.PrecomputeAll(context.Background()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("flow_playback: published %d timesteps in %v\n", steps, time.Since(start).Round(time.Millisecond))

	player, err := timevary.NewPlayer(seq, func(step int, dataset string) (agent.ViewSetSource, error) {
		return agent.NewClientAgent(agent.ClientAgentConfig{
			Dataset: dataset,
			Params:  seq.P,
			DVS:     &dvs.Client{Addr: dvsAddr},
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	player.Lookahead = 2

	sp := geom.Spherical{Theta: 1.4, Phi: 2.0}
	fmt.Printf("%-6s %-10s %-10s\n", "step", "class", "total(s)")
	for t := 0; t < steps; t++ {
		rec, err := player.Seek(context.Background(), t, sp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-10s %-10.4f\n", t, rec.Class, rec.Total.Seconds())
		// Playback pacing gives the temporal prefetcher room to work.
		time.Sleep(120 * time.Millisecond)
	}
	fmt.Println("flow_playback: after the first frames, playback rides the prefetched agent caches.")
}
