// wan_session: the paper's headline experiment in miniature. Runs the
// same orchestrated browsing session under all three streaming cases —
// data in the LAN, data across the WAN with prefetching, and data across
// the WAN with aggressive LAN-depot prestaging — and prints the
// per-access latency comparison of Figures 9-12.
//
// Run with:
//
//	go run ./examples/wan_session
package main

import (
	"context"
	"fmt"
	"log"

	"lonviz/internal/experiments"
	"lonviz/internal/session"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Accesses = 30

	const paperRes = 300 // middle resolution of Figures 8-12
	fmt.Printf("wan_session: three cases at %dx%d (scaled %dx%d), %d accesses each\n",
		paperRes, paperRes, experiments.ScaleRes(paperRes), experiments.ScaleRes(paperRes), cfg.Accesses)

	runs, err := experiments.LatencyExperiment(context.Background(), cfg, paperRes)
	if err != nil {
		log.Fatal(err)
	}

	labels := map[experiments.Case]string{
		experiments.Case1LAN:    "case 1: data in LAN",
		experiments.Case2WAN:    "case 2: data in WAN",
		experiments.Case3Staged: "case 3: WAN + LAN depot",
	}
	fmt.Printf("\n%-7s %-12s %-12s %-12s\n", "access", "case1(s)", "case2(s)", "case3(s)")
	series := make([][]float64, len(runs))
	for i, r := range runs {
		series[i] = session.TotalSeconds(r.Records)
	}
	for i := 0; i < cfg.Accesses; i++ {
		fmt.Printf("%-7d %-12.4f %-12.4f %-12.4f\n", i+1, series[0][i], series[1][i], series[2][i])
	}
	fmt.Println()
	for _, r := range runs {
		counts := session.ClassCounts(r.Records)
		var mean float64
		for _, s := range session.TotalSeconds(r.Records) {
			mean += s
		}
		mean /= float64(len(r.Records))
		fmt.Printf("%-26s mean %.4fs, classes %v, initial phase %d\n",
			labels[r.Case], mean, counts, session.InitialPhaseLength(r.Records))
	}
	fmt.Println("\nwan_session: the paper's claim — with LoN prestaging, WAN browsing feels like LAN browsing\n" +
		"after a short initial phase (compare case 3's tail with case 1).")
}
