// pda_browse: the paper's low-end client scenario. A PDA-class client —
// no local caching beyond the current view set, small display — browses a
// remote light field database across a simulated WAN through a client
// agent. The example deploys the whole stack in-process (depots, DVS,
// server agent) with netsim shaping, then walks an orchestrated cursor
// path and reports what the user would experience.
//
// Run with:
//
//	go run ./examples/pda_browse
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/experiments"
	"lonviz/internal/session"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Accesses = 24
	cfg.ThinkTime = 120 * time.Millisecond // PDA users move slowly

	// res 50 corresponds to the paper's 200x200 "PDA class" resolution at
	// this build's 1/4 scale; decompression at this size is sub-second
	// even on weak hardware (paper section 4.2).
	const res = 50

	fmt.Println("pda_browse: deploying depots, DVS and server agent (case 2: data in the WAN)...")
	d, err := experiments.Deploy(context.Background(), cfg, res, experiments.Case2WAN)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	viewer, err := agent.NewViewer(d.Params, d.CA)
	if err != nil {
		log.Fatal(err)
	}
	viewer.MaxDecoded = 1 // a PDA holds only the current view set

	script, err := session.StandardScript(d.Params, cfg.Accesses, cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-7s %-8s %-10s %-10s %-10s\n", "access", "viewset", "class", "total(s)", "unzip(s)")
	records, err := session.Run(context.Background(), viewer, script, session.RunOptions{
		ThinkTime: cfg.ThinkTime,
		OnAccess: func(i int, rec agent.AccessRecord) {
			fmt.Printf("%-7d %-8s %-10s %-10.4f %-10.4f\n",
				i+1, rec.ID, rec.Class, rec.Total.Seconds(), rec.Decompress.Seconds())
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	counts := session.ClassCounts(records)
	fmt.Printf("\npda_browse: %d accesses: %v\n", len(records), counts)
	var worst float64
	for _, s := range session.TotalSeconds(records) {
		if s > worst {
			worst = s
		}
	}
	fmt.Printf("pda_browse: worst view set wait %.3fs — the QGR bound on how fast this user may pan\n", worst)
}
