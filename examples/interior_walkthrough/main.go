// interior_walkthrough: navigate through the inside of a volume using
// multiple light field databases (paper section 3.2 / the rail-track
// viewer it cites). A track of stations is generated offline with the
// clipped ray caster, published through the ordinary LoN streaming stack,
// and browsed with the multiview browser, which hands the viewer off
// between stations as the position moves.
//
// Run with:
//
//	go run ./examples/interior_walkthrough
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/multiview"
	"lonviz/internal/volume"
)

func main() {
	// A track of three stations across the negHip molecule.
	template := lightfield.ScaledParams(30, 3, 48)
	template.InnerRadius = 0.9
	template.OuterRadius = 2.0
	track, err := multiview.NewTrack("neghip", template,
		[]geom.Vec3{geom.V(-0.3, 0, 0), geom.V(0, 0, 0), geom.V(0.3, 0, 0)}, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interior_walkthrough: track of %d stations, station spheres r=%.2f/%.2f\n",
		len(track.Stations), track.Stations[0].P.InnerRadius, track.Stations[0].P.OuterRadius)

	// Offline generation: a clipped ray-cast database per station.
	vol, err := volume.NegHip(48)
	if err != nil {
		log.Fatal(err)
	}
	gens, err := multiview.StationGenerators(track, vol, volume.DefaultNegHipTF())
	if err != nil {
		log.Fatal(err)
	}

	// The ordinary streaming stack: depots + DVS + one server agent per
	// station dataset.
	var depots []string
	for i := 0; i < 2; i++ {
		dep, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 28, MaxLease: time.Hour})
		if err != nil {
			log.Fatal(err)
		}
		srv := ibp.NewServer(dep)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		depots = append(depots, addr)
	}
	dvsSrv := dvs.NewServer("")
	dvsAddr, err := dvsSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dvsSrv.Close()

	start := time.Now()
	for dataset, gen := range gens {
		sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
			Dataset: dataset,
			Gen:     gen,
			Depots:  depots,
			DVS:     &dvs.Client{Addr: dvsAddr},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer sa.Close()
		if _, err := sa.PrecomputeAll(context.Background()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("interior_walkthrough: generated and published %d station databases in %v\n",
		len(gens), time.Since(start).Round(time.Millisecond))

	browser, err := multiview.NewBrowser(track, func(st multiview.Station) (agent.ViewSetSource, error) {
		return agent.NewClientAgent(agent.ClientAgentConfig{
			Dataset: st.Dataset,
			Params:  st.P,
			DVS:     &dvs.Client{Addr: dvsAddr},
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	// Walk a path that crosses station territories.
	walk := []geom.Vec3{
		geom.V(-1.5, 0.2, 0.1),
		geom.V(-0.9, 0.8, 0.2),
		geom.V(0, 1.1, 0.3),
		geom.V(0.9, 0.8, 0.2),
		geom.V(1.5, 0.2, 0.1),
	}
	if err := os.MkdirAll("walkthrough_frames", 0o755); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-22s %-9s %-10s %-10s\n", "move", "position", "station", "class", "total(s)")
	for i, pos := range walk {
		res, err := browser.MoveTo(context.Background(), pos)
		if err != nil {
			log.Fatalf("move %d: %v", i, err)
		}
		fmt.Printf("%-6d %-22s s%-8d %-10s %-10.4f\n",
			i+1, pos.String(), res.Station.Index, res.Record.Class, res.Record.Total.Seconds())
		im, _, err := browser.Render(pos, 160)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(fmt.Sprintf("walkthrough_frames/move%02d.png", i))
		if err != nil {
			log.Fatal(err)
		}
		if err := im.WritePNG(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	fmt.Println("interior_walkthrough: wrote walkthrough_frames/*.png")
}
