// Quickstart: build a small spherical light field database from the
// synthetic negHip volume with the parallel ray caster, then browse it
// locally — rendering novel views by pure table lookup — and write a few
// PNG frames (the paper's Figure 6 screenshots).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"lonviz/internal/codec"
	"lonviz/internal/geom"
	"lonviz/internal/lightfield"
	"lonviz/internal/volume"
)

func main() {
	// 1. The dataset: a 64^3 potential field standing in for negHip.
	vol, err := volume.NegHip(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart: synthesized 64^3 negHip potential field")

	// 2. Database geometry: a coarse lattice so generation takes seconds.
	// The paper uses 2.5 degree steps with l=6 at up to 600x600.
	p := lightfield.ScaledParams(30, 3, 64) // 6x12 cameras, 2x4 view sets
	gen, err := lightfield.NewRaycastGenerator(p, vol, volume.DefaultNegHipTF())
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	db, err := lightfield.BuildDatabase(context.Background(), gen, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quickstart: ray-cast %d view sets (%d sample views) in %v\n",
		len(db.Sets), p.Rows()*p.Cols(), time.Since(start).Round(time.Millisecond))

	// 3. Compression: every view set is zlib-compressed for transport.
	var raw, packed int64
	for _, vs := range db.Sets {
		frame, err := lightfield.EncodeViewSet(vs, p, codec.DefaultCompression)
		if err != nil {
			log.Fatal(err)
		}
		raw += p.BytesPerViewSet()
		packed += int64(len(frame))
	}
	fmt.Printf("quickstart: database %d bytes raw, %d compressed (%.1fx lossless)\n",
		raw, packed, float64(raw)/float64(packed))

	// 4. Novel views: pure 4-D lookup, no volume access, no GPU.
	r, err := lightfield.NewRenderer(p, lightfield.MapProvider(db.Sets))
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll("quickstart_frames", 0o755); err != nil {
		log.Fatal(err)
	}
	views := []geom.Spherical{
		{Theta: 1.2, Phi: 0.6},
		{Theta: 1.6, Phi: 2.4},
		{Theta: 0.8, Phi: 4.4},
	}
	for i, sp := range views {
		cam, err := p.ViewerCamera(sp, p.OuterRadius*1.6, 200)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		im, stats, err := r.RenderView(cam)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("quickstart_frames/view%d.png", i)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := im.WritePNG(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("quickstart: %s rendered in %v (%d px filled, %d background)\n",
			name, time.Since(t0).Round(time.Microsecond), stats.Filled, stats.Background)
	}
	fmt.Println("quickstart: done — open quickstart_frames/*.png")
}
