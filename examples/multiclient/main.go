// multiclient: one client agent serving several clients at once (paper
// section 3.5: "A client agent can serve multiple clients, especially in
// a mobile environment"). Three remote clients connect to the same agent
// over its TCP protocol and browse concurrently; the shared cache means
// later clients hit view sets the first one already pulled across the
// WAN.
//
// Run with:
//
//	go run ./examples/multiclient
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/experiments"
	"lonviz/internal/session"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Accesses = 12

	fmt.Println("multiclient: deploying the WAN case and exposing the client agent over TCP...")
	d, err := experiments.Deploy(context.Background(), cfg, 50, experiments.Case2WAN)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	srv, err := agent.NewClientAgentServer(d.CA, "neghip")
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("multiclient: client agent on %s\n", addr)

	var wg sync.WaitGroup
	type result struct {
		name   string
		counts map[agent.AccessClass]int
		mean   float64
	}
	results := make([]result, 3)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := &agent.RemoteSource{Addr: addr, Dataset: "neghip"}
			viewer, err := agent.NewViewer(d.Params, src)
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			viewer.MaxDecoded = 1
			// Clients start staggered and share most of the path (same
			// seed base) so the cache sharing shows.
			time.Sleep(time.Duration(c) * 300 * time.Millisecond)
			script, err := session.StandardScript(d.Params, cfg.Accesses, cfg.Seed)
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			recs, err := session.Run(context.Background(), viewer, script,
				session.RunOptions{ThinkTime: 60 * time.Millisecond})
			if err != nil {
				log.Printf("client %d: session: %v", c, err)
				return
			}
			var mean float64
			for _, s := range session.TotalSeconds(recs) {
				mean += s
			}
			mean /= float64(len(recs))
			results[c] = result{
				name:   fmt.Sprintf("client %d", c),
				counts: session.ClassCounts(recs),
				mean:   mean,
			}
		}(c)
	}
	wg.Wait()

	fmt.Printf("\n%-10s %-12s %-40s\n", "client", "mean (s)", "access classes")
	for _, r := range results {
		if r.counts == nil {
			continue
		}
		fmt.Printf("%-10s %-12.4f %v\n", r.name, r.mean, r.counts)
	}
	st := d.CA.Stats()
	fmt.Printf("\nmulticlient: shared agent stats: %+v\n", st)
	fmt.Println("multiclient: later clients ride the first client's WAN fetches (hits at the shared agent).")
}
